"""Speculation-control battery: the paper's §2.2 applications as
first-class harness experiments.

Three experiments turn the estimator-quality tables into end-to-end
speculation-control results on the cycle-level pipeline:

* ``speculation-gating`` -- Manne-style pipeline gating
  (:func:`repro.speculation.compare_gating`): fetch stalls while too
  many unresolved low-confidence branches are in flight.  The figures
  of merit are the paper's: wrong-path (squashed) instructions saved
  vs. IPC lost, swept over gating thresholds and estimator choices.
* ``speculation-eager`` -- selective dual-path execution
  (:func:`repro.speculation.compare_eager_execution`): forks on
  low-confidence branches convert covered mispredictions into a
  one-cycle path switch at the price of fetch dilution.
* ``speculation-inversion`` -- the negative result
  (:func:`repro.speculation.evaluate_inversion`): inverting
  low-confidence predictions only pays at PVN > 50%, which no estimator
  reaches across the suite.

Each (workload, estimator, threshold) cell is memoised in process and
persisted in the artifact cache as a compact picklable dataclass, so
the parallel scheduler's warm waves (:mod:`repro.harness.parallel`)
fan the pipeline simulations out exactly like the figure experiments,
and warm reruns are cache reads.  Registry metrics
(``speculation.gated_cycles``, ``speculation.wrong_path_instructions``,
``speculation.wrong_path_saved``, ``speculation.recovery_cycles``,
``speculation.eager_*``, ``speculation.inversion_flips``) are counted
at compute time and ship back from workers with the normal metric
deltas; ``run_all`` summarises each speculation experiment as a
``speculation_summary`` journal event.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Callable, Dict, List, Optional, Tuple

from ..confidence import (
    BoostedEstimator,
    JRSEstimator,
    MispredictionDistanceEstimator,
)
from ..engine import get_cache, profile_fingerprint, workload_program
from ..obs.registry import REGISTRY
from ..pipeline import (
    PipelineConfig,
    backend_uses_decoded,
    decoded_run,
    normalize_backend,
    pipeline_fast_enabled,
)
from ..predictors import make_predictor
from ..speculation import (
    compare_eager_execution,
    compare_gating,
    evaluate_inversion,
)
from .experiments import FULL, ExperimentResult, Scale, _trace
from .spec import SPECS, ArtifactDep, ExperimentSpec
from .tables import TextTable, pct1, spct1

#: Estimator configurations the speculation battery sweeps.  The
#: factories take the (fresh) predictor the comparison runs against, so
#: each gated/ungated/eager run gets independent estimator state.
SPECULATION_ESTIMATORS: Dict[str, Callable] = {
    "jrs": lambda predictor: JRSEstimator(threshold=15, enhanced=True),
    "distance": lambda predictor: MispredictionDistanceEstimator(4),
    "boosted-distance": lambda predictor: BoostedEstimator(
        MispredictionDistanceEstimator(4), k=2
    ),
}

#: Gating thresholds swept by ``speculation-gating`` (unresolved
#: low-confidence branches in flight before fetch stalls).
GATE_THRESHOLDS: Tuple[int, ...] = (1, 2)

#: The predictor every speculation experiment runs on.
SPECULATION_PREDICTOR = "gshare"

#: Experiment ids, in battery order (``repro speculate`` runs these).
SPECULATION_BATTERY: Tuple[str, ...] = (
    "speculation-gating",
    "speculation-eager",
    "speculation-inversion",
)


def _predictor_factory():
    return make_predictor(SPECULATION_PREDICTOR)


# ----------------------------------------------------------------------
# cached cells (the unit the warm waves fan out over)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class GatingCell:
    """Gated vs. ungated pipeline run of one workload/estimator/threshold."""

    workload: str
    estimator: str
    threshold: int
    baseline_cycles: int
    baseline_committed: int
    baseline_squashed: int
    gated_cycles: int
    gated_committed: int
    gated_squashed: int
    gated_mispredictions: int
    fetch_gated_cycles: int
    recovery_cycles: int

    @property
    def baseline_ipc_or_none(self) -> Optional[float]:
        """Committed IPC of the ungated run, or ``None`` before any
        cycle has elapsed -- never a fabricated 0.0."""
        if not self.baseline_cycles:
            return None
        return self.baseline_committed / self.baseline_cycles

    @property
    def gated_ipc_or_none(self) -> Optional[float]:
        if not self.gated_cycles:
            return None
        return self.gated_committed / self.gated_cycles

    @property
    def baseline_ipc(self) -> float:
        ipc = self.baseline_ipc_or_none
        return 0.0 if ipc is None else ipc

    @property
    def gated_ipc(self) -> float:
        ipc = self.gated_ipc_or_none
        return 0.0 if ipc is None else ipc

    @property
    def wrong_path_saved(self) -> int:
        """Squashed (wrong-path) instructions the gate avoided."""
        return self.baseline_squashed - self.gated_squashed

    @property
    def squash_reduction(self) -> Optional[float]:
        if not self.baseline_squashed:
            return None
        return self.wrong_path_saved / self.baseline_squashed

    @property
    def ipc_delta(self) -> Optional[float]:
        """Relative IPC change, gated vs. ungated (negative = lost).

        Routed through the ``*_or_none`` accessors: a wide-commit
        backend that finishes the budget in few cycles must never
        divide by a stale or zero denominator, so any degenerate run
        renders as n/a instead of a fabricated ratio."""
        base = self.baseline_ipc_or_none
        gated = self.gated_ipc_or_none
        if base is None or gated is None or not base:
            return None
        return gated / base - 1.0

    @property
    def slowdown(self) -> Optional[float]:
        if not self.baseline_cycles:
            return None
        return self.gated_cycles / self.baseline_cycles - 1.0

    def journal_row(self) -> Dict:
        return {
            "workload": self.workload,
            "estimator": self.estimator,
            "threshold": self.threshold,
            "wrong_path_saved": self.wrong_path_saved,
            "squash_reduction": self.squash_reduction,
            "ipc_delta": self.ipc_delta,
            "slowdown": self.slowdown,
            "gated_cycles": self.fetch_gated_cycles,
        }


@dataclass(frozen=True)
class EagerCell:
    """Single-path vs. dual-path run of one workload/estimator."""

    workload: str
    estimator: str
    baseline_cycles: int
    baseline_committed: int
    eager_cycles: int
    eager_committed: int
    forks: int
    covered_mispredictions: int
    wasted_slots: int

    @property
    def speedup(self) -> Optional[float]:
        if not self.eager_cycles:
            return None
        return self.baseline_cycles / self.eager_cycles - 1.0

    @property
    def fork_precision(self) -> Optional[float]:
        return self.covered_mispredictions / self.forks if self.forks else None

    def journal_row(self) -> Dict:
        return {
            "workload": self.workload,
            "estimator": self.estimator,
            "forks": self.forks,
            "covered": self.covered_mispredictions,
            "wasted_slots": self.wasted_slots,
            "speedup": self.speedup,
        }


@dataclass(frozen=True)
class InversionCell:
    """Trace-level ledger of inverting low-confidence predictions."""

    workload: str
    estimator: str
    branches: int
    base_correct: int
    flips: int
    flips_helped: int
    flips_hurt: int

    @property
    def base_accuracy(self) -> float:
        return self.base_correct / self.branches if self.branches else 0.0

    @property
    def inverted_accuracy(self) -> float:
        correct = self.base_correct + self.flips_helped - self.flips_hurt
        return correct / self.branches if self.branches else 0.0

    @property
    def accuracy_delta(self) -> float:
        return self.inverted_accuracy - self.base_accuracy

    @property
    def flip_pvn(self) -> Optional[float]:
        return self.flips_helped / self.flips if self.flips else None

    def journal_row(self) -> Dict:
        return {
            "workload": self.workload,
            "estimator": self.estimator,
            "flips": self.flips,
            "accuracy_delta": self.accuracy_delta,
            "flip_pvn": self.flip_pvn,
        }


def _estimator_factory(name: str) -> Callable:
    try:
        return SPECULATION_ESTIMATORS[name]
    except KeyError:
        raise KeyError(
            f"unknown speculation estimator {name!r}; "
            f"available: {', '.join(sorted(SPECULATION_ESTIMATORS))}"
        ) from None


def _compute_gating_cell(
    workload: str,
    estimator_name: str,
    threshold: int,
    iterations: Optional[int],
    max_instructions: int,
    backend: str = "inorder",
) -> GatingCell:
    config = PipelineConfig()
    decoded = (
        decoded_run(workload, iterations)
        if backend_uses_decoded(backend) and pipeline_fast_enabled()
        else None
    )
    comparison = compare_gating(
        workload_program(workload, iterations),
        _predictor_factory,
        _estimator_factory(estimator_name),
        gate_threshold=threshold,
        config=config,
        max_instructions=max_instructions,
        decoded=decoded,
        backend=backend,
    )
    baseline, gated = comparison.baseline.stats, comparison.gated.stats
    cell = GatingCell(
        workload=workload,
        estimator=estimator_name,
        threshold=threshold,
        baseline_cycles=baseline.cycles,
        baseline_committed=baseline.committed_instructions,
        baseline_squashed=baseline.squashed_instructions,
        gated_cycles=gated.cycles,
        gated_committed=gated.committed_instructions,
        gated_squashed=gated.squashed_instructions,
        gated_mispredictions=gated.committed_mispredictions,
        fetch_gated_cycles=comparison.gated_cycles,
        recovery_cycles=gated.committed_mispredictions
        * (1 + config.mispredict_penalty),
    )
    REGISTRY.count("speculation.gated_cycles", cell.fetch_gated_cycles)
    REGISTRY.count("speculation.wrong_path_instructions", cell.baseline_squashed)
    REGISTRY.count("speculation.wrong_path_saved", cell.wrong_path_saved)
    REGISTRY.count("speculation.recovery_cycles", cell.recovery_cycles)
    return cell


@lru_cache(maxsize=512)
def gating_cell(
    workload: str,
    estimator_name: str,
    threshold: int,
    iterations: Optional[int],
    max_instructions: int,
    backend: str = "inorder",
) -> GatingCell:
    backend = normalize_backend(backend)
    return get_cache().cached(
        "spec-gating",
        lambda: _compute_gating_cell(
            workload,
            estimator_name,
            threshold,
            iterations,
            max_instructions,
            backend,
        ),
        workload=workload,
        estimator=estimator_name,
        threshold=threshold,
        iterations=iterations,
        max_instructions=max_instructions,
        predictor=SPECULATION_PREDICTOR,
        profile=profile_fingerprint(workload),
        config=repr(PipelineConfig()),
        backend=backend,
    )


def _compute_eager_cell(
    workload: str,
    estimator_name: str,
    iterations: Optional[int],
    max_instructions: int,
    backend: str = "inorder",
) -> EagerCell:
    decoded = (
        decoded_run(workload, iterations)
        if backend_uses_decoded(backend) and pipeline_fast_enabled()
        else None
    )
    comparison = compare_eager_execution(
        workload_program(workload, iterations),
        _predictor_factory,
        _estimator_factory(estimator_name),
        config=PipelineConfig(),
        max_instructions=max_instructions,
        decoded=decoded,
        backend=backend,
    )
    cell = EagerCell(
        workload=workload,
        estimator=estimator_name,
        baseline_cycles=comparison.baseline.stats.cycles,
        baseline_committed=comparison.baseline.stats.committed_instructions,
        eager_cycles=comparison.eager.stats.cycles,
        eager_committed=comparison.eager.stats.committed_instructions,
        forks=comparison.forks,
        covered_mispredictions=comparison.covered_mispredictions,
        wasted_slots=comparison.wasted_slots,
    )
    REGISTRY.count("speculation.eager_forks", cell.forks)
    REGISTRY.count("speculation.eager_covered", cell.covered_mispredictions)
    REGISTRY.count("speculation.eager_wasted_slots", cell.wasted_slots)
    return cell


@lru_cache(maxsize=512)
def eager_cell(
    workload: str,
    estimator_name: str,
    iterations: Optional[int],
    max_instructions: int,
    backend: str = "inorder",
) -> EagerCell:
    backend = normalize_backend(backend)
    return get_cache().cached(
        "spec-eager",
        lambda: _compute_eager_cell(
            workload, estimator_name, iterations, max_instructions, backend
        ),
        workload=workload,
        estimator=estimator_name,
        iterations=iterations,
        max_instructions=max_instructions,
        predictor=SPECULATION_PREDICTOR,
        profile=profile_fingerprint(workload),
        config=repr(PipelineConfig()),
        backend=backend,
    )


def _compute_inversion_cell(
    workload: str, estimator_name: str, iterations: Optional[int]
) -> InversionCell:
    predictor = _predictor_factory()
    result = evaluate_inversion(
        _trace(workload, iterations),
        predictor,
        _estimator_factory(estimator_name)(predictor),
    )
    REGISTRY.count("speculation.inversion_flips", result.flips)
    return InversionCell(
        workload=workload,
        estimator=estimator_name,
        branches=result.branches,
        base_correct=result.base_correct,
        flips=result.flips,
        flips_helped=result.flips_helped,
        flips_hurt=result.flips_hurt,
    )


@lru_cache(maxsize=512)
def inversion_cell(
    workload: str, estimator_name: str, iterations: Optional[int]
) -> InversionCell:
    return get_cache().cached(
        "spec-inversion",
        lambda: _compute_inversion_cell(workload, estimator_name, iterations),
        workload=workload,
        estimator=estimator_name,
        iterations=iterations,
        predictor=SPECULATION_PREDICTOR,
        profile=profile_fingerprint(workload),
    )


def clear_speculation_memoised() -> None:
    """Drop the in-process memo tier of the speculation cells."""
    gating_cell.cache_clear()
    eager_cell.cache_clear()
    inversion_cell.cache_clear()


# ----------------------------------------------------------------------
# experiments
# ----------------------------------------------------------------------


def experiment_speculation_gating(scale: Scale = FULL) -> ExperimentResult:
    """Pipeline gating: wrong-path savings vs IPC loss per threshold."""
    result = ExperimentResult(
        "speculation-gating",
        "Pipeline gating on low-confidence branch count",
    )
    table = TextTable(
        title="Speculation control (pipeline gating):"
        " wrong-path savings vs IPC delta"
        f" ({SPECULATION_PREDICTOR} pipeline)",
        headers=[
            "workload",
            "estimator",
            "thr",
            "gated cyc",
            "wrong-path saved",
            "squash cut",
            "ipc delta",
            "slowdown",
        ],
    )
    cells: List[GatingCell] = []
    for workload in scale.workloads:
        for estimator_name in SPECULATION_ESTIMATORS:
            for threshold in GATE_THRESHOLDS:
                cell = gating_cell(
                    workload,
                    estimator_name,
                    threshold,
                    scale.iterations,
                    scale.pipeline_instructions,
                    scale.backend,
                )
                cells.append(cell)
                table.add_row(
                    [
                        cell.workload,
                        cell.estimator,
                        cell.threshold,
                        cell.fetch_gated_cycles,
                        cell.wrong_path_saved,
                        pct1(cell.squash_reduction),
                        spct1(cell.ipc_delta),
                        spct1(cell.slowdown),
                    ]
                )
    table.add_note(
        "paper §2.2 / Manne et al.: a good estimator buys a large cut in"
        " squashed (wrong-path) work for a small IPC loss"
    )
    result.tables.append(table)
    result.data["cells"] = cells
    result.data["journal_rows"] = [cell.journal_row() for cell in cells]
    return result


def experiment_speculation_eager(scale: Scale = FULL) -> ExperimentResult:
    """Selective dual-path execution per estimator."""
    result = ExperimentResult(
        "speculation-eager",
        "Selective eager (dual-path) execution on low confidence",
    )
    table = TextTable(
        title="Speculation control (dual-path): fork precision vs speedup"
        f" ({SPECULATION_PREDICTOR} pipeline)",
        headers=[
            "workload",
            "estimator",
            "forks",
            "covered",
            "precision",
            "wasted slots",
            "speedup",
        ],
    )
    cells: List[EagerCell] = []
    for workload in scale.workloads:
        for estimator_name in SPECULATION_ESTIMATORS:
            cell = eager_cell(
                workload,
                estimator_name,
                scale.iterations,
                scale.pipeline_instructions,
                scale.backend,
            )
            cells.append(cell)
            table.add_row(
                [
                    cell.workload,
                    cell.estimator,
                    cell.forks,
                    cell.covered_mispredictions,
                    pct1(cell.fork_precision),
                    cell.wasted_slots,
                    spct1(cell.speedup),
                ]
            )
    table.add_note(
        "every covered misprediction converts a flush into a one-cycle"
        " switch; every false fork pays fetch dilution for nothing"
    )
    result.tables.append(table)
    result.data["cells"] = cells
    result.data["journal_rows"] = [cell.journal_row() for cell in cells]
    return result


def experiment_speculation_inversion(scale: Scale = FULL) -> ExperimentResult:
    """Prediction inversion: the paper's negative result, measured."""
    result = ExperimentResult(
        "speculation-inversion",
        "Prediction inversion on low confidence (negative result)",
    )
    table = TextTable(
        title="Speculation control (inversion): accuracy delta vs flip PVN"
        f" ({SPECULATION_PREDICTOR} trace engine)",
        headers=[
            "workload",
            "estimator",
            "flips",
            "base acc",
            "inverted acc",
            "delta",
            "flip pvn",
        ],
    )
    cells: List[InversionCell] = []
    for workload in scale.workloads:
        for estimator_name in SPECULATION_ESTIMATORS:
            cell = inversion_cell(workload, estimator_name, scale.iterations)
            cells.append(cell)
            table.add_row(
                [
                    cell.workload,
                    cell.estimator,
                    cell.flips,
                    pct1(cell.base_accuracy),
                    pct1(cell.inverted_accuracy),
                    spct1(cell.accuracy_delta),
                    pct1(cell.flip_pvn),
                ]
            )
    table.add_note(
        "inversion wins only at flip PVN > 50%; the paper reports no"
        " estimator reaches it across a range of programs"
    )
    result.tables.append(table)
    result.data["cells"] = cells
    result.data["journal_rows"] = [cell.journal_row() for cell in cells]
    return result


SPECULATION_EXPERIMENTS: Dict[str, Callable[[Scale], ExperimentResult]] = {
    "speculation-gating": experiment_speculation_gating,
    "speculation-eager": experiment_speculation_eager,
    "speculation-inversion": experiment_speculation_inversion,
}

# Self-registration keeps the import order flexible: whichever of
# experiments.py / speculation.py loads first, the central SPECS
# registry ends up complete once both have executed.  Each spec
# declares the exact per-estimator (and per-threshold) cells the warm
# waves must materialise.
SPECS.register(
    ExperimentSpec(
        experiment_id="speculation-gating",
        title="Pipeline gating on low-confidence branch count",
        run=experiment_speculation_gating,
        section="speculation",
        order=150,
        paper_ref="Section 2.2 (Manne et al.)",
        produces=("trace", "gating"),
        deps=(ArtifactDep(kind="trace"),)
        + tuple(
            ArtifactDep(kind="gating", estimator=estimator, threshold=threshold)
            for estimator in SPECULATION_ESTIMATORS
            for threshold in GATE_THRESHOLDS
        ),
    )
)
SPECS.register(
    ExperimentSpec(
        experiment_id="speculation-eager",
        title="Selective eager (dual-path) execution on low confidence",
        run=experiment_speculation_eager,
        section="speculation",
        order=160,
        paper_ref="Section 2.2",
        produces=("trace", "eager"),
        deps=(ArtifactDep(kind="trace"),)
        + tuple(
            ArtifactDep(kind="eager", estimator=estimator)
            for estimator in SPECULATION_ESTIMATORS
        ),
    )
)
SPECS.register(
    ExperimentSpec(
        experiment_id="speculation-inversion",
        title="Prediction inversion on low confidence (negative result)",
        run=experiment_speculation_inversion,
        section="speculation",
        order=170,
        paper_ref="Section 2.2",
        produces=("trace", "inversion"),
        deps=(ArtifactDep(kind="trace"),)
        + tuple(
            ArtifactDep(kind="inversion", estimator=estimator)
            for estimator in SPECULATION_ESTIMATORS
        ),
    )
)
