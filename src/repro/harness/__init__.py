"""Experiment harness: one experiment per paper table/figure."""

from .experiments import (
    EXPERIMENTS,
    FULL,
    QUICK,
    SCALES,
    SMOKE,
    ExperimentResult,
    Scale,
    clear_memoised,
    run_experiment,
    standard_estimators,
)
from .checkpoint import load_checkpoint, store_checkpoint
from .parallel import (
    FAILURE_CLASSES,
    classify_failure,
    default_jobs,
    plan_warm_tasks,
    run_parallel,
)
from .runner import (
    ResumePlan,
    plan_resume,
    render_performance,
    render_report,
    render_speculation_control,
    run_all,
)
from .speculation import (
    GATE_THRESHOLDS,
    SPECULATION_BATTERY,
    SPECULATION_ESTIMATORS,
)
from .tables import TextTable, pct, pct1, spct1

__all__ = [
    "EXPERIMENTS",
    "FULL",
    "QUICK",
    "SCALES",
    "SMOKE",
    "ExperimentResult",
    "Scale",
    "clear_memoised",
    "run_experiment",
    "standard_estimators",
    "FAILURE_CLASSES",
    "classify_failure",
    "default_jobs",
    "load_checkpoint",
    "plan_resume",
    "plan_warm_tasks",
    "run_parallel",
    "store_checkpoint",
    "ResumePlan",
    "render_performance",
    "render_report",
    "render_speculation_control",
    "run_all",
    "GATE_THRESHOLDS",
    "SPECULATION_BATTERY",
    "SPECULATION_ESTIMATORS",
    "TextTable",
    "pct",
    "pct1",
    "spct1",
]
