"""Experiment harness: one experiment per paper table/figure."""

from .experiments import (
    EXPERIMENTS,
    FULL,
    QUICK,
    ExperimentResult,
    Scale,
    run_experiment,
    standard_estimators,
)
from .runner import render_report, run_all
from .tables import TextTable, pct, pct1

__all__ = [
    "EXPERIMENTS",
    "FULL",
    "QUICK",
    "ExperimentResult",
    "Scale",
    "run_experiment",
    "standard_estimators",
    "render_report",
    "run_all",
    "TextTable",
    "pct",
    "pct1",
]
