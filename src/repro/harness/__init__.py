"""Experiment harness: one experiment per paper table/figure."""

from .experiments import (
    EXPERIMENTS,
    FULL,
    QUICK,
    SCALES,
    SMOKE,
    ExperimentResult,
    Scale,
    clear_memoised,
    run_experiment,
    standard_estimators,
)
from .parallel import default_jobs, plan_warm_tasks, run_parallel
from .runner import (
    render_performance,
    render_report,
    render_speculation_control,
    run_all,
)
from .speculation import (
    GATE_THRESHOLDS,
    SPECULATION_BATTERY,
    SPECULATION_ESTIMATORS,
)
from .tables import TextTable, pct, pct1, spct1

__all__ = [
    "EXPERIMENTS",
    "FULL",
    "QUICK",
    "SCALES",
    "SMOKE",
    "ExperimentResult",
    "Scale",
    "clear_memoised",
    "run_experiment",
    "standard_estimators",
    "default_jobs",
    "plan_warm_tasks",
    "run_parallel",
    "render_performance",
    "render_report",
    "render_speculation_control",
    "run_all",
    "GATE_THRESHOLDS",
    "SPECULATION_BATTERY",
    "SPECULATION_ESTIMATORS",
    "TextTable",
    "pct",
    "pct1",
    "spct1",
]
