"""Declarative experiment specs and the shared-artifact dependency DAG.

This module is the harness's single source of truth about *what* the
battery contains.  Each paper table/figure (and each speculation-control
experiment) is described by a frozen :class:`ExperimentSpec`: its id,
report section and order, the artifact kinds it produces, and -- most
importantly -- the shared artifacts it **depends on**
(:class:`ArtifactDep`): workload traces, pipeline branch streams,
estimator-bank measurements, speculation cells.

Execution layers consume the specs instead of hardcoding knowledge:

* :mod:`repro.harness.parallel` expands the declared deps into an
  :class:`ArtifactNode` graph and derives its warm-up waves by
  topological level (:func:`topological_levels`);
* :func:`measurement_plan` unions the measurement families every
  selected experiment wants per predictor, which is what lets the
  estimator bank (:func:`repro.engine.measure.measure_bank`) simulate
  each (workload, predictor) pair exactly once per battery;
* :mod:`repro.harness.checkpoint` folds the declared deps into the
  checkpoint key, so a spec change invalidates stale checkpoints;
* :mod:`repro.harness.runner` renders report sections in spec order;
* :mod:`repro.cli` builds ``repro list`` and the plottable set from the
  registry.

Both :mod:`repro.harness.experiments` and
:mod:`repro.harness.speculation` register into the process-wide
:data:`SPECS` registry declaratively; registering an id twice raises a
``ValueError`` naming both registrants (previously a re-import would
silently overwrite).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

#: Dependency kinds the planner knows how to expand (one artifact per
#: workload of the scale for every kind).
DEP_KINDS = (
    "trace",
    "trace-columnar",
    "program-decoded",
    "pipeline",
    "pipeline-segment",
    "measurement",
    "gating",
    "eager",
    "inversion",
)


@dataclass(frozen=True)
class ArtifactDep:
    """One declared dependency on a shared, cacheable artifact.

    ``kind`` selects the artifact family; the other fields parameterise
    it (which fields apply depends on the kind):

    * ``trace`` -- the committed branch stream of each workload;
    * ``program-decoded`` -- the packed pre-decoded form of each
      workload program (the pipeline fast path's input; planned
      implicitly under every pipeline-backed dependency);
    * ``pipeline`` -- a cycle-level pipeline run (``predictor``);
    * ``measurement`` -- an estimator-bank measurement (``predictor``,
      ``families``; see :data:`repro.harness.experiments.BANK_FAMILIES`);
    * ``gating`` / ``eager`` / ``inversion`` -- speculation-control
      cells (``estimator``, and ``threshold`` for gating).
    """

    kind: str
    predictor: Optional[str] = None
    families: Tuple[str, ...] = ()
    estimator: Optional[str] = None
    threshold: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in DEP_KINDS:
            raise ValueError(
                f"unknown artifact dependency kind {self.kind!r};"
                f" expected one of {', '.join(DEP_KINDS)}"
            )

    def key_parts(self) -> Tuple:
        """Stable, JSON-representable identity (checkpoint fingerprints)."""
        return (
            self.kind,
            self.predictor,
            list(self.families),
            self.estimator,
            self.threshold,
        )


@dataclass(frozen=True)
class ExperimentSpec:
    """Everything the harness needs to know about one experiment."""

    experiment_id: str
    #: One-line summary (``repro list``).
    title: str
    #: ``(scale) -> ExperimentResult``.
    run: Callable
    #: Report section key (``paper`` or ``speculation``).
    section: str
    #: Position within the report; the battery renders ascending.
    order: int
    #: Human label of the reproduced paper artifact (README table).
    paper_ref: str = ""
    #: Artifact-cache kinds this experiment's cold execution writes.
    produces: Tuple[str, ...] = ()
    #: Shared artifacts the experiment reads (drives the warm-up DAG).
    deps: Tuple[ArtifactDep, ...] = ()
    #: Whether ``repro plot`` can chart it.
    plot: bool = False

    def dep_kinds(self) -> Tuple[str, ...]:
        return tuple(dict.fromkeys(dep.kind for dep in self.deps))


#: Report sections in render order, with their human headings.
SECTIONS: Dict[str, str] = {
    "paper": "Paper tables and figures",
    "speculation": "Speculation control",
}


class SpecRegistry(Mapping):
    """Ordered ``experiment id -> ExperimentSpec`` registry.

    A mapping (so legacy ``EXPERIMENTS``-style callers keep working via
    :class:`ExperimentFunctions`) with one extra rule: each id registers
    exactly once.  A second registration raises a ``ValueError`` naming
    both registrants, which turns the old silent-overwrite hazard into
    a loud import-time failure.
    """

    def __init__(self) -> None:
        self._specs: Dict[str, ExperimentSpec] = {}
        self._registrants: Dict[str, str] = {}

    def register(
        self, spec: ExperimentSpec, registrant: Optional[str] = None
    ) -> ExperimentSpec:
        """Add ``spec``; ``registrant`` defaults to ``spec.run.__module__``."""
        registrant = registrant or getattr(spec.run, "__module__", "<unknown>")
        existing = self._registrants.get(spec.experiment_id)
        if existing is not None:
            raise ValueError(
                f"experiment id {spec.experiment_id!r} is already registered"
                f" by {existing}; refusing duplicate registration by"
                f" {registrant}"
            )
        self._specs[spec.experiment_id] = spec
        self._registrants[spec.experiment_id] = registrant
        return spec

    def registrant(self, experiment_id: str) -> Optional[str]:
        return self._registrants.get(experiment_id)

    def in_order(self) -> List[ExperimentSpec]:
        """All specs sorted by declared report order (ties by id)."""
        return sorted(
            self._specs.values(), key=lambda spec: (spec.order, spec.experiment_id)
        )

    def by_section(self) -> Dict[str, List[ExperimentSpec]]:
        """Specs grouped by section, each group in report order."""
        grouped: Dict[str, List[ExperimentSpec]] = {}
        for spec in self.in_order():
            grouped.setdefault(spec.section, []).append(spec)
        return grouped

    # -- Mapping interface ---------------------------------------------

    def __getitem__(self, experiment_id: str) -> ExperimentSpec:
        return self._specs[experiment_id]

    def __iter__(self) -> Iterator[str]:
        return iter(
            spec.experiment_id for spec in self.in_order()
        )

    def __len__(self) -> int:
        return len(self._specs)


class ExperimentFunctions(Mapping):
    """Read-only ``id -> run callable`` view over a :class:`SpecRegistry`.

    The legacy ``EXPERIMENTS`` dict surface: iteration, membership,
    ``[...]`` and ``.items()`` all work, but there is no ``update`` --
    new experiments register an :class:`ExperimentSpec` instead.
    """

    def __init__(self, registry: SpecRegistry) -> None:
        self._registry = registry

    def __getitem__(self, experiment_id: str) -> Callable:
        return self._registry[experiment_id].run

    def __iter__(self) -> Iterator[str]:
        return iter(self._registry)

    def __len__(self) -> int:
        return len(self._registry)


#: The process-wide spec registry.  ``experiments.py`` registers the
#: paper battery, ``speculation.py`` the speculation battery.
SPECS = SpecRegistry()


# ----------------------------------------------------------------------
# the artifact dependency graph
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ArtifactNode:
    """One concrete artifact instance in the warm-up DAG.

    ``key`` is ``(kind, args)`` -- exactly the warm-task tuple the
    parallel workers execute -- and ``deps`` names the keys of
    prerequisite nodes.  Dep keys absent from the planned node set are
    treated as already satisfied (the artifact pre-exists or is cheap).
    """

    key: Tuple[str, Tuple]
    deps: Tuple[Tuple[str, Tuple], ...] = field(default_factory=tuple)

    @property
    def kind(self) -> str:
        return self.key[0]


def topological_levels(
    nodes: Sequence[ArtifactNode],
) -> List[List[ArtifactNode]]:
    """Group ``nodes`` into dependency levels (Kahn's algorithm).

    Level ``i`` contains every node whose in-graph dependencies all sit
    in levels ``< i``; input order is preserved within a level, so the
    schedule is deterministic.  Raises ``ValueError`` on a cycle.
    """
    known = {node.key for node in nodes}
    placed: set = set()
    remaining = list(nodes)
    levels: List[List[ArtifactNode]] = []
    while remaining:
        level = [
            node
            for node in remaining
            if all(dep not in known or dep in placed for dep in node.deps)
        ]
        if not level:
            cycle = ", ".join(repr(node.key) for node in remaining)
            raise ValueError(f"artifact dependency cycle among: {cycle}")
        levels.append(level)
        placed.update(node.key for node in level)
        remaining = [node for node in remaining if node.key not in placed]
    return levels


def measurement_plan(
    specs: Iterable[ExperimentSpec],
) -> Tuple[Tuple[str, Tuple[str, ...]], ...]:
    """Per-predictor union of measurement families ``specs`` request.

    The returned plan -- ``((predictor, (family, ...)), ...)``, sorted
    and picklable -- is what the estimator bank measures per (workload,
    predictor) pair, so every selected experiment's families come out
    of one trace pass.
    """
    union: Dict[str, set] = {}
    for spec in specs:
        for dep in spec.deps:
            if dep.kind == "measurement" and dep.predictor is not None:
                union.setdefault(dep.predictor, set()).update(dep.families)
    return tuple(
        (predictor, tuple(sorted(families)))
        for predictor, families in sorted(union.items())
    )
