"""Run experiment batteries and render a full report.

``run_all`` executes every experiment in DESIGN.md's index -- serially
or across a process pool (``jobs``) -- and returns the results;
``render_report`` turns them into the text that EXPERIMENTS.md embeds,
including a battery-performance section (per-experiment wall time,
simulation throughput, artifact-cache hit rates, journal census) so the
effect of caching and parallelism is visible in the output.  The CLI
exposes both.

Passing a :class:`repro.obs.journal.RunJournal` makes the run narrate
itself as schema-validated JSONL events: ``run_started`` first, then
per-experiment (and, in parallel mode, per-warm-task) events, and a
closing ``cache_stats`` / ``metrics_snapshot`` / ``run_finished``
triple describing the run's own deltas.  The ``sim.branches`` counter
in the ``metrics_snapshot`` event and the "simulated N branches" note
in the report come from the same metrics registry, so they can never
disagree.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Union

from ..engine import (
    BRANCHES_METRIC,
    PASSES_SAVED_METRIC,
    REPLAY_TIMER,
    get_cache,
)
from ..engine import cache as artifact_cache
from ..obs.journal import (
    NullJournal,
    coalesce,
    finished_experiments,
    read_journal_tolerant,
)
from ..obs.registry import REGISTRY
from .checkpoint import load_checkpoint
from .experiments import EXPERIMENTS, FULL, ExperimentResult, Scale
from .spec import SPECS, measurement_plan
from .tables import TextTable

Journal = Optional[object]  # RunJournal | NullJournal


@dataclass
class ResumePlan:
    """What a prior run's journal says about continuing it.

    ``selection``/``scale`` come from the ``run_started`` event (either
    may be ``None`` for a journal killed before that line survived);
    ``finished`` is the checkpoint ledger; ``problems`` are the
    truncated/invalid lines the tolerant reader skipped.
    """

    journal_path: Path
    selection: Optional[List[str]]
    scale: Optional[Scale]
    finished: List[str]
    problems: List[str]


def plan_resume(path: Union[str, Path]) -> ResumePlan:
    """Read a (possibly truncated) journal into a :class:`ResumePlan`."""
    events, problems = read_journal_tolerant(path)
    started = next(
        (event for event in events if event.get("event") == "run_started"), None
    )
    selection: Optional[List[str]] = None
    scale: Optional[Scale] = None
    if started is not None:
        raw_selection = started.get("selection")
        if isinstance(raw_selection, list):
            selection = [str(eid) for eid in raw_selection]
        raw_scale = started.get("scale")
        if isinstance(raw_scale, dict):
            try:
                scale = Scale(
                    iterations=raw_scale.get("iterations"),
                    pipeline_instructions=raw_scale["pipeline_instructions"],
                    workloads=tuple(raw_scale["workloads"]),
                    # absent in pre-segmentation journals: resume as whole runs
                    segment_instructions=raw_scale.get("segment_instructions"),
                    # absent in pre-backend journals: resume as in-order
                    backend=raw_scale.get("backend") or "inorder",
                )
            except (KeyError, TypeError):
                scale = None
    return ResumePlan(
        journal_path=Path(path),
        selection=selection,
        scale=scale,
        finished=finished_experiments(events),
        problems=problems,
    )


def run_all(
    scale: Scale = FULL,
    only: Optional[Iterable[str]] = None,
    jobs: int = 1,
    journal: Journal = None,
    resume: Optional[Union[str, Path]] = None,
    task_timeout: Optional[float] = None,
    retries: Optional[int] = None,
    backoff_s: Optional[float] = None,
) -> Dict[str, ExperimentResult]:
    """Run every (or the selected) experiment; returns id -> result.

    ``jobs > 1`` fans the battery out over a supervised process pool
    (see :mod:`repro.harness.parallel`); results are merged in
    selection order and are identical to a serial run.  Each result
    carries a ``duration_s`` wall-time stamp.  ``journal`` (a
    :class:`repro.obs.journal.RunJournal`) receives the structured
    event stream for the run.

    ``resume`` names a prior run's journal: experiments it records as
    finished are restored from their checkpoints in the artifact cache
    (``experiment_skipped`` events) and only the remainder executes.  A
    finished experiment whose checkpoint is missing or stale (different
    scale, bumped code salt) silently re-runs, so a resumed battery can
    never produce different output than a fresh one.

    ``task_timeout``/``retries``/``backoff_s`` tune the supervisor
    (default from ``REPRO_TASK_TIMEOUT``/``REPRO_TASK_RETRIES``/
    ``REPRO_RETRY_BACKOFF``).
    """
    journal = coalesce(journal)
    selected = list(only) if only is not None else list(EXPERIMENTS)
    unknown = [experiment_id for experiment_id in selected if experiment_id not in EXPERIMENTS]
    if unknown:
        raise KeyError(f"unknown experiment ids: {', '.join(unknown)}")
    from .parallel import RunAborted, run_parallel

    restored: Dict[str, ExperimentResult] = {}
    if resume is not None:
        plan = plan_resume(resume)
        for experiment_id in selected:
            if experiment_id not in plan.finished:
                continue
            hit, result = load_checkpoint(experiment_id, scale)
            if hit and result is not None:
                restored[experiment_id] = result

    journal.emit(
        "run_started",
        selection=selected,
        jobs=jobs,
        mode="parallel" if jobs > 1 else "serial",
        scale={
            "iterations": scale.iterations,
            "pipeline_instructions": scale.pipeline_instructions,
            "segment_instructions": scale.segment_instructions,
            "backend": scale.backend,
            "workloads": list(scale.workloads),
        },
    )
    if resume is not None:
        journal.emit(
            "run_resumed",
            journal=str(resume),
            skipped=[eid for eid in selected if eid in restored],
        )
        for experiment_id in selected:
            if experiment_id in restored:
                journal.emit(
                    "experiment_skipped",
                    experiment=experiment_id,
                    source="checkpoint",
                )
                REGISTRY.count("supervisor.experiments_resumed")

    # cache degradations (failed stores, corrupt entries) become
    # journal warnings for the duration of the run
    sink_installed = not isinstance(journal, NullJournal)
    if sink_installed:
        previous_sink = artifact_cache.set_warning_sink(
            lambda context, message: journal.emit(
                "warning", message=message, context=context
            )
        )
    cache_baseline = get_cache().stats.snapshot()
    metrics_baseline = REGISTRY.snapshot()
    started = time.perf_counter()
    try:
        remaining = [eid for eid in selected if eid not in restored]
        plan = measurement_plan(SPECS[eid] for eid in remaining)
        fresh = run_parallel(
            remaining,
            scale,
            jobs,
            journal=journal,
            task_timeout=task_timeout,
            retries=retries,
            backoff_s=backoff_s,
            measurement_families=plan,
        )
    except RunAborted as aborted:
        # close the journal the way a finished run does -- stats triple
        # then the (fsynced) terminal event -- so `--resume` of an
        # aborted run sees a well-formed prefix and skips exactly the
        # experiments that were checkpointed before the interrupt
        finished = [
            eid
            for eid in selected
            if eid in restored or eid in aborted.results
        ]
        journal.emit(
            "cache_stats", **get_cache().stats.since(cache_baseline).as_dict()
        )
        journal.emit(
            "metrics_snapshot", **REGISTRY.since(metrics_baseline).as_dict()
        )
        journal.emit("run_aborted", reason="signal", finished=finished)
        raise
    finally:
        if sink_installed:
            artifact_cache.set_warning_sink(previous_sink)
    duration = time.perf_counter() - started
    results = {
        experiment_id: restored.get(experiment_id, fresh.get(experiment_id))
        for experiment_id in selected
    }
    for experiment_id, result in results.items():
        rows = result.data.get("journal_rows")
        if rows:
            journal.emit(
                "speculation_summary", experiment=experiment_id, rows=rows
            )
    journal.emit("cache_stats", **get_cache().stats.since(cache_baseline).as_dict())
    journal.emit("metrics_snapshot", **REGISTRY.since(metrics_baseline).as_dict())
    journal.emit("run_finished", experiments=list(results), duration_s=duration)
    return results


def _default_clock() -> str:
    return time.strftime("%Y-%m-%d %H:%M:%S")


def render_performance(
    results: Dict[str, ExperimentResult], journal: Journal = None
) -> str:
    """The battery-performance section of a report."""
    table = TextTable(
        title="Battery performance",
        headers=["experiment", "wall time"],
    )
    total = 0.0
    for experiment_id, result in results.items():
        if result.duration_s is None:
            continue
        total += result.duration_s
        table.add_row([experiment_id, f"{result.duration_s:8.3f}s"])
    table.add_row(["total (sum)", f"{total:8.3f}s"])
    branches = int(REGISTRY.counter_value(BRANCHES_METRIC))
    if branches:
        seconds = REGISTRY.timer_value(REPLAY_TIMER).seconds
        rate = branches / seconds if seconds > 0 else 0.0
        table.add_note(
            f"simulated {branches:,} branches in"
            f" {seconds:.3f}s"
            f" ({rate:,.0f} branches/s)"
        )
    passes_saved = int(REGISTRY.counter_value(PASSES_SAVED_METRIC))
    if passes_saved:
        table.add_note(
            f"estimator bank subsumed {passes_saved} single-purpose"
            " measurement pass(es) (session.passes_saved)"
        )
    stats = get_cache().stats
    lookups = stats.hits + stats.misses
    if lookups:
        table.add_note(
            f"artifact cache: {stats.hits} hits, {stats.misses} misses"
            f" ({stats.hits / lookups:.0%} hit rate),"
            f" {stats.writes} writes"
        )
    failed = int(REGISTRY.counter_value("experiments.failed_parallel"))
    if failed:
        table.add_note(
            f"{failed} failed experiment attempt(s) were retried or"
            " re-run serially"
        )
    retries = int(REGISTRY.counter_value("supervisor.retries"))
    if retries:
        table.add_note(f"supervisor scheduled {retries} retry attempt(s)")
    recycles = int(REGISTRY.counter_value("supervisor.pool_recycles"))
    if recycles:
        table.add_note(f"worker pool recycled {recycles} time(s)")
    resumed = int(REGISTRY.counter_value("supervisor.experiments_resumed"))
    if resumed:
        table.add_note(
            f"{resumed} experiment(s) restored from checkpoints (--resume)"
        )
    injected = int(REGISTRY.counter_value("faults.injected"))
    if injected:
        table.add_note(f"{injected} fault(s) injected (REPRO_FAULTS)")
    if journal is not None and not isinstance(journal, NullJournal):
        census = ", ".join(
            f"{name}={journal.event_counts[name]}"
            for name in sorted(journal.event_counts)
        )
        where = f" -> {journal.path}" if getattr(journal, "path", None) else ""
        table.add_note(
            f"journal: {journal.events_written} events ({census}){where}"
        )
    return table.to_text()


def render_speculation_control(
    results: Dict[str, ExperimentResult],
) -> Optional[str]:
    """The "Speculation control" summary section of a report.

    Built from the ``speculation-gating`` (and, when present,
    ``speculation-eager``) results: one row per workload/estimator with
    the paper's two axes -- wrong-path instructions saved and IPC delta
    -- so the trade-off is readable without digging through the
    per-experiment tables.  Returns ``None`` when no speculation
    experiment ran.
    """
    gating = results.get("speculation-gating")
    eager = results.get("speculation-eager")
    if gating is None and eager is None:
        return None
    from .tables import pct1, spct1

    lines: List[str] = ["## Speculation control", ""]
    if gating is not None:
        table = TextTable(
            title="Speculation control summary: savings vs slowdown"
            " per workload (pipeline gating)",
            headers=[
                "workload",
                "estimator",
                "thr",
                "wrong-path saved",
                "squash cut",
                "ipc delta",
                "slowdown",
            ],
        )
        for cell in gating.data["cells"]:
            table.add_row(
                [
                    cell.workload,
                    cell.estimator,
                    cell.threshold,
                    cell.wrong_path_saved,
                    pct1(cell.squash_reduction),
                    spct1(cell.ipc_delta),
                    spct1(cell.slowdown),
                ]
            )
        lines.append(table.to_text())
        lines.append("")
    if eager is not None:
        table = TextTable(
            title="Speculation control summary: dual-path forks per workload",
            headers=["workload", "estimator", "forks", "covered", "speedup"],
        )
        for cell in eager.data["cells"]:
            table.add_row(
                [
                    cell.workload,
                    cell.estimator,
                    cell.forks,
                    cell.covered_mispredictions,
                    spct1(cell.speedup),
                ]
            )
        lines.append(table.to_text())
        lines.append("")
    return "\n".join(lines).rstrip("\n")


def render_report(
    results: Dict[str, ExperimentResult],
    scale: Scale,
    clock: Optional[Callable[[], str]] = None,
    performance: bool = True,
    journal: Journal = None,
) -> str:
    """Render all experiment output as one report document.

    ``clock`` returns the ``generated:`` timestamp string; injecting a
    fixed clock (and ``performance=False``) makes the report
    deterministic and diffable in CI.  ``journal`` adds an event census
    to the battery-performance section.
    """
    timestamp = (clock or _default_clock)()
    # Note: the scale line deliberately omits segment_instructions --
    # segmentation is an execution strategy, not an input, and a
    # segmented report must stay byte-identical to the whole-run one.
    # The backend IS an input (it changes every cycle-level number),
    # but the historical in-order default is omitted so existing golden
    # reports stay byte-identical.
    backend_suffix = (
        f", backend={scale.backend}" if scale.backend != "inorder" else ""
    )
    lines: List[str] = [
        "# Experiment report",
        "",
        f"generated: {timestamp}",
        f"scale: iterations={scale.iterations or 'profile default'}, "
        f"pipeline_instructions={scale.pipeline_instructions}, "
        f"workloads={','.join(scale.workloads)}"
        f"{backend_suffix}",
        "",
    ]
    positions = {eid: index for index, eid in enumerate(results)}

    def _render_key(experiment_id: str):
        spec = SPECS.get(experiment_id)
        order = spec.order if spec is not None else float("inf")
        return (order, positions[experiment_id])

    for experiment_id in sorted(results, key=_render_key):
        lines.append(results[experiment_id].to_text())
        lines.append("")
    speculation = render_speculation_control(results)
    if speculation:
        lines.append(speculation)
        lines.append("")
    if performance and any(
        result.duration_s is not None for result in results.values()
    ):
        lines.append(render_performance(results, journal=journal))
        lines.append("")
    return "\n".join(lines)
