"""Run experiment batteries and render a full report.

``run_all`` executes every experiment in DESIGN.md's index and returns
the results; ``render_report`` turns them into the text that
EXPERIMENTS.md embeds.  The CLI exposes both.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Optional

from .experiments import EXPERIMENTS, FULL, ExperimentResult, Scale


def run_all(
    scale: Scale = FULL, only: Optional[Iterable[str]] = None
) -> Dict[str, ExperimentResult]:
    """Run every (or the selected) experiment; returns id -> result."""
    selected = list(only) if only is not None else list(EXPERIMENTS)
    unknown = [experiment_id for experiment_id in selected if experiment_id not in EXPERIMENTS]
    if unknown:
        raise KeyError(f"unknown experiment ids: {', '.join(unknown)}")
    results: Dict[str, ExperimentResult] = {}
    for experiment_id in selected:
        results[experiment_id] = EXPERIMENTS[experiment_id](scale)
    return results


def render_report(results: Dict[str, ExperimentResult], scale: Scale) -> str:
    """Render all experiment output as one report document."""
    lines: List[str] = [
        "# Experiment report",
        "",
        f"generated: {time.strftime('%Y-%m-%d %H:%M:%S')}",
        f"scale: iterations={scale.iterations or 'profile default'}, "
        f"pipeline_instructions={scale.pipeline_instructions}, "
        f"workloads={','.join(scale.workloads)}",
        "",
    ]
    for experiment_id, result in results.items():
        lines.append(result.to_text())
        lines.append("")
    return "\n".join(lines)
