"""Run experiment batteries and render a full report.

``run_all`` executes every experiment in DESIGN.md's index -- serially
or across a process pool (``jobs``) -- and returns the results;
``render_report`` turns them into the text that EXPERIMENTS.md embeds,
including a battery-performance section (per-experiment wall time,
simulation throughput, artifact-cache hit rates) so the effect of
caching and parallelism is visible in the output.  The CLI exposes
both.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Iterable, List, Optional

from ..engine import SIMULATION_COUNTERS, get_cache
from .experiments import EXPERIMENTS, FULL, ExperimentResult, Scale
from .tables import TextTable


def run_all(
    scale: Scale = FULL,
    only: Optional[Iterable[str]] = None,
    jobs: int = 1,
) -> Dict[str, ExperimentResult]:
    """Run every (or the selected) experiment; returns id -> result.

    ``jobs > 1`` fans the battery out over a process pool (see
    :mod:`repro.harness.parallel`); results are merged in selection
    order and are identical to a serial run.  Each result carries a
    ``duration_s`` wall-time stamp.
    """
    selected = list(only) if only is not None else list(EXPERIMENTS)
    unknown = [experiment_id for experiment_id in selected if experiment_id not in EXPERIMENTS]
    if unknown:
        raise KeyError(f"unknown experiment ids: {', '.join(unknown)}")
    from .parallel import run_parallel

    return run_parallel(selected, scale, jobs)


def _default_clock() -> str:
    return time.strftime("%Y-%m-%d %H:%M:%S")


def render_performance(results: Dict[str, ExperimentResult]) -> str:
    """The battery-performance section of a report."""
    table = TextTable(
        title="Battery performance",
        headers=["experiment", "wall time"],
    )
    total = 0.0
    for experiment_id, result in results.items():
        if result.duration_s is None:
            continue
        total += result.duration_s
        table.add_row([experiment_id, f"{result.duration_s:8.3f}s"])
    table.add_row(["total (sum)", f"{total:8.3f}s"])
    counters = SIMULATION_COUNTERS
    if counters.branches:
        table.add_note(
            f"simulated {counters.branches:,} branches in"
            f" {counters.seconds:.3f}s"
            f" ({counters.branches_per_second:,.0f} branches/s)"
        )
    stats = get_cache().stats
    lookups = stats.hits + stats.misses
    if lookups:
        table.add_note(
            f"artifact cache: {stats.hits} hits, {stats.misses} misses"
            f" ({stats.hits / lookups:.0%} hit rate),"
            f" {stats.writes} writes"
        )
    return table.to_text()


def render_report(
    results: Dict[str, ExperimentResult],
    scale: Scale,
    clock: Optional[Callable[[], str]] = None,
    performance: bool = True,
) -> str:
    """Render all experiment output as one report document.

    ``clock`` returns the ``generated:`` timestamp string; injecting a
    fixed clock (and ``performance=False``) makes the report
    deterministic and diffable in CI.
    """
    timestamp = (clock or _default_clock)()
    lines: List[str] = [
        "# Experiment report",
        "",
        f"generated: {timestamp}",
        f"scale: iterations={scale.iterations or 'profile default'}, "
        f"pipeline_instructions={scale.pipeline_instructions}, "
        f"workloads={','.join(scale.workloads)}",
        "",
    ]
    for experiment_id, result in results.items():
        lines.append(result.to_text())
        lines.append("")
    if performance and any(
        result.duration_s is not None for result in results.values()
    ):
        lines.append(render_performance(results))
        lines.append("")
    return "\n".join(lines)
