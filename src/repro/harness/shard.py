"""Segmented (shardable, checkpointable) pipeline cell execution.

Long pipeline simulations are the battery's unit of irrecoverable
work: a (workload, predictor) cell at paper scale runs tens of
millions of committed instructions, and before this module a mid-run
crash threw the whole cell away.  ``run_segmented`` splits one cell
into fixed instruction-budget **segments**: after each segment the
paused simulator is frozen (:mod:`repro.pipeline.snapshot`) and stored
as a content-addressed ``pipeline-segment`` artifact, so

* a killed run resumes from the furthest stored segment instead of
  from zero (``--resume`` restarts *mid-cell*),
* the DAG scheduler (:mod:`repro.harness.parallel`) can walk a cell's
  segment chain as dependent nodes while independent cells run
  concurrently in other processes -- sharding the pipeline grid.

Segment boundaries are *soft* (``stop_instructions``): the run loop
pauses at the top of a cycle once the boundary is reached, which the
equivalence tests prove leaves the simulation cycle-for-cycle
identical to one that never paused.  The final ``pipeline`` artifact
is therefore byte-identical whatever the segmentation -- its cache key
deliberately does **not** include the segment size.

Segment artifacts *are* keyed by segment size (and schema version and
everything that feeds the simulation), so changing
``--segment-instructions`` can never resume from a mismatched chain.
"""

from __future__ import annotations

from typing import List, Optional

from ..confidence import JRSEstimator, SaturatingCountersEstimator
from ..engine import get_cache, profile_fingerprint, workload_program
from ..pipeline import (
    SNAPSHOT_SCHEMA,
    PipelineConfig,
    PipelineResult,
    PipelineSimulator,
    SnapshotError,
    backend_uses_decoded,
    capture_snapshot,
    create_simulator,
    decoded_run,
    normalize_backend,
    pipeline_fast_enabled,
    restore_snapshot,
)
from ..predictors import make_predictor


def segmentation_active(
    max_instructions: Optional[int], segment_instructions: Optional[int]
) -> bool:
    """Does this (budget, segment size) pair actually split the run?"""
    return bool(
        max_instructions
        and segment_instructions
        and 0 < segment_instructions < max_instructions
    )


def segment_targets(
    max_instructions: int, segment_instructions: int
) -> List[int]:
    """Cumulative soft boundaries, ending with the hard total budget.

    ``segment_targets(100, 30) == [30, 60, 90, 100]``: three snapshot
    boundaries plus the final stretch.  A boundary may be overshot by
    up to ``commit_width - 1`` committed instructions (soft stop);
    only the final total truncates exactly.
    """
    if not segmentation_active(max_instructions, segment_instructions):
        return [max_instructions]
    targets = list(
        range(segment_instructions, max_instructions, segment_instructions)
    )
    targets.append(max_instructions)
    return targets


def segment_count(
    max_instructions: Optional[int], segment_instructions: Optional[int]
) -> int:
    """Snapshot boundaries a cell's chain has (0 when not segmented)."""
    if not segmentation_active(max_instructions, segment_instructions):
        return 0
    return len(segment_targets(max_instructions, segment_instructions)) - 1


def build_cell_simulator(
    workload: str,
    predictor_name: str,
    iterations: Optional[int],
    with_estimators: bool,
    backend: str = "inorder",
) -> PipelineSimulator:
    """A fresh pipeline simulator for one (workload, predictor) cell.

    This is the single construction point shared by whole-cell runs
    (:func:`repro.harness.experiments._compute_pipeline_result`) and
    segment chains, so both start from identical state.  ``backend``
    picks the simulator class from the pipeline backend registry.
    """
    backend = normalize_backend(backend)
    program = workload_program(workload, iterations)
    predictor = make_predictor(predictor_name)
    estimators = {}
    if with_estimators:
        estimators = {
            "jrs": JRSEstimator(threshold=15, enhanced=True),
            "satcnt": SaturatingCountersEstimator.for_predictor(predictor),
        }
    # the fast path reads the shared pre-decoded artifact (warmed by
    # the DAG scheduler; a cheap decode on a cold cache) -- only the
    # in-order backend has a decoded engine, others fetch per
    # instruction on the reference path
    decoded = (
        decoded_run(workload, iterations)
        if backend_uses_decoded(backend) and pipeline_fast_enabled()
        else None
    )
    return create_simulator(
        program,
        predictor,
        backend=backend,
        config=PipelineConfig(),
        estimators=estimators,
        decoded=decoded,
    )


def segment_parts(
    workload: str,
    predictor_name: str,
    iterations: Optional[int],
    max_instructions: int,
    with_estimators: bool,
    segment_instructions: int,
    segment: int,
    backend: str = "inorder",
) -> dict:
    """Cache-key parts for one ``pipeline-segment`` artifact."""
    return dict(
        workload=workload,
        predictor=predictor_name,
        iterations=iterations,
        max_instructions=max_instructions,
        with_estimators=with_estimators,
        segment_instructions=segment_instructions,
        segment=segment,
        schema=SNAPSHOT_SCHEMA,
        profile=profile_fingerprint(workload),
        config=repr(PipelineConfig()),
        backend=backend,
    )


def _simulator_at(
    workload: str,
    predictor_name: str,
    iterations: Optional[int],
    max_instructions: int,
    with_estimators: bool,
    segment_instructions: int,
    upto: int,
    backend: str = "inorder",
) -> PipelineSimulator:
    """The cell's simulator paused at segment boundary ``upto``.

    Scans the cache from ``upto`` downward for the furthest stored
    snapshot, restores it, and simulates only the missing segments --
    storing each newly reached boundary.  Idempotent: re-running for a
    boundary that is already cached costs one snapshot restore.
    """
    targets = segment_targets(max_instructions, segment_instructions)
    boundaries = targets[:-1]
    cache = get_cache()
    simulator: Optional[PipelineSimulator] = None
    start = 0
    for index in range(upto, -1, -1):
        hit, snapshot = cache.load(
            cache.key(
                "pipeline-segment",
                **segment_parts(
                    workload,
                    predictor_name,
                    iterations,
                    max_instructions,
                    with_estimators,
                    segment_instructions,
                    index,
                    backend,
                ),
            )
        )
        if not hit:
            continue
        try:
            simulator = restore_snapshot(snapshot)
        except SnapshotError:
            continue  # stale/garbled snapshot: fall back one boundary
        start = index + 1
        break
    if simulator is None:
        simulator = build_cell_simulator(
            workload, predictor_name, iterations, with_estimators, backend
        )
    for index in range(start, upto + 1):
        simulator.run(
            max_instructions=max_instructions,
            stop_instructions=boundaries[index],
        )
        cache.store(
            cache.key(
                "pipeline-segment",
                **segment_parts(
                    workload,
                    predictor_name,
                    iterations,
                    max_instructions,
                    with_estimators,
                    segment_instructions,
                    index,
                    backend,
                ),
            ),
            capture_snapshot(simulator),
        )
    return simulator


def warm_segment(
    workload: str,
    predictor_name: str,
    iterations: Optional[int],
    max_instructions: int,
    with_estimators: bool,
    segment_instructions: int,
    segment: int,
    backend: str = "inorder",
) -> dict:
    """DAG warm task: materialise segments ``0..segment`` of one cell.

    Returns a small progress summary (the snapshot itself stays in the
    artifact cache; shipping megabytes of machine state through the
    pool result queue would defeat the point).
    """
    simulator = _simulator_at(
        workload,
        predictor_name,
        iterations,
        max_instructions,
        with_estimators,
        segment_instructions,
        segment,
        backend,
    )
    return {
        "segment": segment,
        "committed_instructions": simulator.stats.committed_instructions,
        "done": simulator.done,
    }


def run_segmented(
    workload: str,
    predictor_name: str,
    iterations: Optional[int],
    max_instructions: int,
    with_estimators: bool,
    segment_instructions: Optional[int],
    backend: str = "inorder",
) -> PipelineResult:
    """Run one pipeline cell to completion, segment chain and all.

    With segmentation inactive this is exactly the whole-cell run.
    Otherwise the chain's snapshots are restored/extended as needed and
    the final stretch runs to the hard budget; the returned result is
    byte-identical to the unsegmented run either way.
    """
    if not segmentation_active(max_instructions, segment_instructions):
        simulator = build_cell_simulator(
            workload, predictor_name, iterations, with_estimators, backend
        )
        return simulator.run(max_instructions=max_instructions)
    last = segment_count(max_instructions, segment_instructions) - 1
    simulator = _simulator_at(
        workload,
        predictor_name,
        iterations,
        max_instructions,
        with_estimators,
        segment_instructions,
        last,
        backend,
    )
    return simulator.run(max_instructions=max_instructions)
