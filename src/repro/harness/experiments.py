"""One experiment per table/figure of the paper.

Every experiment is a plain function ``(scale) -> ExperimentResult``
registered declaratively as an :class:`repro.harness.spec.ExperimentSpec`
in the central :data:`repro.harness.spec.SPECS` registry, which carries
its report section/order and its declared dependencies on shared
artifacts.  ``EXPERIMENTS`` is a read-only ``id -> function`` view over
that registry for legacy callers.

Heavy intermediate products (workload traces, pipeline branch records,
static-estimator profiles, per-workload estimator-bank measurements)
are memoised per scale in process *and* persisted in the
content-addressed artifact cache (:mod:`repro.engine.cache`), so the
whole battery costs each simulation once per machine -- warm reruns,
pytest sessions and parallel workers (:mod:`repro.harness.parallel`)
all share them.  The estimator bank (:func:`measurement_cell`) goes one
step further: all estimator families a battery needs for one
(workload, predictor) pair are evaluated in a *single* trace pass, so
even a cold cache simulates each pair exactly once
(``session.passes_saved`` counts the subsumed passes).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.clustering import measure_boosting, misestimation_distance
from ..analysis.distance import (
    DistanceBucket,
    DistanceCurve,
    perceived_distance_curve,
    precise_distance_curve,
)
from ..analysis.sweeps import (
    SweepLine,
    average_sweep_lines,
    distance_value_histogram,
    jrs_value_histogram,
)
from ..confidence import (
    BoostedEstimator,
    JRSEstimator,
    McFarlingVariant,
    MispredictionDistanceEstimator,
    PatternHistoryEstimator,
    SaturatingCountersEstimator,
    StaticEstimator,
    boosted_pvn,
    profile_confident_sites,
)
from ..engine import (
    columnar_run,
    confident_sites_vector,
    get_cache,
    measure_bank,
    profile_fingerprint,
    record_pipeline_simulation,
    vector_enabled,
    workload_run,
)
from ..metrics import QuadrantCounts, average_quadrants, figure1_family
from ..pipeline import DEPTH_HISTOGRAM_KEY, PipelineConfig, clear_decoded_cache
from ..predictors import make_predictor
from ..workloads import SUITE
from . import paper_values
from .spec import SPECS, ArtifactDep, ExperimentFunctions, ExperimentSpec
from .tables import TextTable, pct, pct1

#: Predictors compared throughout the paper's evaluation.
PREDICTORS = ("gshare", "mcfarling", "sag")

#: Estimator display order for Table 2-style output.
ESTIMATOR_ORDER = ("jrs", "satcnt", "pattern", "static")

ESTIMATOR_LABELS = {
    "jrs": "JRS, Threshold >= 15",
    "satcnt": "Saturating Counters",
    "pattern": "History Pattern",
    "static": "Static, Threshold > 90%",
}

#: Estimator families the measurement bank can co-evaluate in one trace
#: pass, in canonical bank order.  ``accuracy`` is the estimator-free
#: family (predictor accuracy only); the rest map 1:1 onto estimator
#: configurations from the paper.
BANK_FAMILIES = (
    "accuracy",
    "jrs",
    "satcnt",
    "satcnt-either",
    "pattern",
    "static",
    "distance",
    "boosted-distance",
)

#: The Table 2 quartet (display order doubles as the family subset).
STANDARD_FAMILIES = ESTIMATOR_ORDER


@dataclass(frozen=True)
class Scale:
    """Experiment sizing: how much simulation to run.

    ``iterations=None`` uses each profile's calibrated default (the
    "full" runs reported in EXPERIMENTS.md); tests use small scales.
    """

    iterations: Optional[int] = None
    pipeline_instructions: int = 750_000
    workloads: Tuple[str, ...] = SUITE
    #: Soft segment size for pipeline cells (``None``/0 = whole runs).
    #: Segmented cells checkpoint a ``pipeline-segment`` snapshot at
    #: every boundary, making long runs shardable and resumable
    #: mid-cell; the final results are byte-identical either way.
    segment_instructions: Optional[int] = None
    #: Pipeline backend every cycle-level cell runs on (``inorder``
    #: is the paper-validated 5-stage core; ``ooo`` the R10K-style
    #: out-of-order core).  A spec-level dimension like predictor
    #: choice: it flows into artifact cache keys, DAG node arguments
    #: and checkpoint fingerprints.
    backend: str = "inorder"

    def key(self) -> Tuple:
        return (
            self.iterations,
            self.pipeline_instructions,
            self.workloads,
            self.segment_instructions,
            self.backend,
        )


# the pre-decoded pipeline fast path (~5x branches/s) pays for 5x
# deeper cycle-level runs at the same wall clock as the old presets
FULL = Scale()
QUICK = Scale(iterations=120, pipeline_instructions=100_000)
#: Tiny battery for CI smoke runs and parallel-equivalence tests.
SMOKE = Scale(
    iterations=60,
    pipeline_instructions=8_000,
    workloads=("compress", "vortex"),
)
#: Paper-size pipeline budgets (~20x full), practical only because
#: segmented cells checkpoint and shard across processes.
PAPER = Scale(
    iterations=None,
    pipeline_instructions=15_000_000,
    segment_instructions=750_000,
)

#: Named scale presets the CLI exposes as ``--scale``.
SCALES: Dict[str, Scale] = {
    "smoke": SMOKE,
    "quick": QUICK,
    "full": FULL,
    "paper": PAPER,
}


@dataclass
class ExperimentResult:
    """Output of one experiment: tables for humans, data for tests."""

    experiment_id: str
    title: str
    tables: List[TextTable] = field(default_factory=list)
    data: Dict = field(default_factory=dict)
    #: Wall time the experiment took (stamped by the runner/scheduler);
    #: deliberately excluded from to_text/to_json so tables stay
    #: byte-identical across serial, parallel and cached runs.
    duration_s: Optional[float] = None

    def to_text(self) -> str:
        parts = [f"## {self.experiment_id}: {self.title}"]
        parts.extend(table.to_text() for table in self.tables)
        return "\n\n".join(parts)

    def to_json(self) -> str:
        """Machine-readable dump of the rendered tables (the structured
        ``data`` field holds arbitrary objects and is not serialised)."""
        import json

        return json.dumps(
            {
                "experiment": self.experiment_id,
                "title": self.title,
                "tables": [
                    {
                        "title": table.title,
                        "headers": table.headers,
                        "rows": table.rows,
                        "notes": table.notes,
                    }
                    for table in self.tables
                ],
            },
            indent=2,
        )


# ----------------------------------------------------------------------
# shared memoised products (in-process lru over the persistent cache)
# ----------------------------------------------------------------------


@lru_cache(maxsize=256)
def _trace(workload: str, iterations: Optional[int]):
    return workload_run(workload, iterations).trace


def _bank_trace(workload: str, iterations: Optional[int]):
    """The trace representation measurement passes should replay.

    Columnar (vector-engine) when enabled, the plain branch stream
    otherwise -- both replay identically through the scalar loop, so
    callers never need to care which they got.
    """
    if vector_enabled():
        return columnar_run(workload, iterations)
    return _trace(workload, iterations)


def _compute_static_sites(
    workload: str, predictor_name: str, iterations: Optional[int]
) -> frozenset:
    trace = _bank_trace(workload, iterations)
    sites = confident_sites_vector(trace, make_predictor(predictor_name), 0.90)
    if sites is not None:
        return sites
    return frozenset(
        profile_confident_sites(trace, make_predictor(predictor_name), 0.90)
    )


@lru_cache(maxsize=256)
def _static_sites(
    workload: str, predictor_name: str, iterations: Optional[int]
) -> frozenset:
    return get_cache().cached(
        "static-sites",
        lambda: _compute_static_sites(workload, predictor_name, iterations),
        workload=workload,
        predictor=predictor_name,
        iterations=iterations,
        threshold=0.90,
        profile=profile_fingerprint(workload),
    )


def _compute_pipeline_result(
    workload: str,
    predictor_name: str,
    iterations: Optional[int],
    max_instructions: int,
    with_estimators: bool,
    segment_instructions: Optional[int] = None,
    backend: str = "inorder",
):
    # simulator construction and the (optionally segmented) run both
    # live in repro.harness.shard so segment chains start from state
    # identical to a whole-cell run
    from .shard import run_segmented

    started = time.perf_counter()
    result = run_segmented(
        workload,
        predictor_name,
        iterations,
        max_instructions,
        with_estimators,
        segment_instructions,
        backend,
    )
    record_pipeline_simulation(
        result.stats.fetched_branches, time.perf_counter() - started
    )
    return result


@lru_cache(maxsize=64)
def _pipeline_result(
    workload: str,
    predictor_name: str,
    iterations: Optional[int],
    max_instructions: int,
    with_estimators: bool = False,
    segment_instructions: Optional[int] = None,
    backend: str = "inorder",
):
    # the segment size is deliberately NOT part of the final artifact's
    # key: segmentation cannot change the result (equivalence-tested),
    # so whole and segmented runs share one ``pipeline`` artifact; the
    # backend IS part of the key -- it changes every cycle-level number
    return get_cache().cached(
        "pipeline",
        lambda: _compute_pipeline_result(
            workload,
            predictor_name,
            iterations,
            max_instructions,
            with_estimators,
            segment_instructions,
            backend,
        ),
        workload=workload,
        predictor=predictor_name,
        iterations=iterations,
        max_instructions=max_instructions,
        with_estimators=with_estimators,
        profile=profile_fingerprint(workload),
        config=repr(PipelineConfig()),
        backend=backend,
    )


def standard_estimators(predictor_name: str, predictor, workload: str, scale: Scale):
    """The paper's four estimator configurations for one predictor."""
    return {
        "jrs": JRSEstimator(threshold=15, enhanced=True),
        "satcnt": SaturatingCountersEstimator.for_predictor(
            predictor, variant=McFarlingVariant.BOTH_STRONG
        ),
        "pattern": PatternHistoryEstimator.for_predictor(predictor),
        "static": StaticEstimator(
            _static_sites(workload, predictor_name, scale.iterations), 0.90
        ),
    }


# ----------------------------------------------------------------------
# the estimator bank: one trace pass per (workload, predictor) cell
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class MeasurementCell:
    """One estimator-bank measurement of a (predictor, workload) pair.

    ``quadrants`` is keyed by family name; ``accuracy`` is the
    predictor's committed-branch accuracy from the same pass.  Cells
    are the cacheable unit the DAG's ``measurement`` artifacts map to.
    """

    predictor: str
    workload: str
    families: Tuple[str, ...]
    quadrants: Dict[str, QuadrantCounts]
    accuracy: float
    branches: int
    mispredictions: int

    def quadrant(self, family: str) -> QuadrantCounts:
        try:
            return self.quadrants[family]
        except KeyError:
            raise KeyError(
                f"family {family!r} was not measured in this cell"
                f" (has: {', '.join(self.families)})"
            ) from None


def _family_estimator(
    family: str,
    predictor_name: str,
    predictor,
    workload: str,
    iterations: Optional[int],
):
    """A fresh estimator instance for one bank family."""
    if family == "jrs":
        return JRSEstimator(threshold=15, enhanced=True)
    if family == "satcnt":
        return SaturatingCountersEstimator.for_predictor(
            predictor, variant=McFarlingVariant.BOTH_STRONG
        )
    if family == "satcnt-either":
        return SaturatingCountersEstimator.for_predictor(
            predictor, variant=McFarlingVariant.EITHER_STRONG
        )
    if family == "pattern":
        return PatternHistoryEstimator.for_predictor(predictor)
    if family == "static":
        return StaticEstimator(
            _static_sites(workload, predictor_name, iterations), 0.90
        )
    if family == "distance":
        return MispredictionDistanceEstimator(4)
    if family == "boosted-distance":
        return BoostedEstimator(MispredictionDistanceEstimator(4), k=2)
    raise KeyError(
        f"unknown estimator family {family!r};"
        f" available: {', '.join(BANK_FAMILIES)}"
    )


def _bank_subsumes(families: Tuple[str, ...]) -> int:
    """How many single-purpose measure passes one bank pass replaces.

    Pre-bank, each consumer group paid its own trace pass per
    (workload, predictor): the Table 2 standard quartet, Table 3's
    saturating-counter variants, Table 1's accuracy-only measurement
    and the distance-estimator variants.  The bank folds every group
    present in ``families`` into one pass.
    """
    present = set(families)
    passes = 0
    if set(STANDARD_FAMILIES) <= present:
        passes += 1
    if "satcnt-either" in present:
        passes += 1
    if "accuracy" in present:
        passes += 1
    if present & {"distance", "boosted-distance"}:
        passes += 1
    return max(passes, 1)


def _compute_measurement_cell(
    predictor_name: str,
    workload: str,
    iterations: Optional[int],
    families: Tuple[str, ...],
) -> MeasurementCell:
    trace = _bank_trace(workload, iterations)
    predictor = make_predictor(predictor_name)
    estimators = {
        family: _family_estimator(
            family, predictor_name, predictor, workload, iterations
        )
        for family in BANK_FAMILIES
        if family in families and family != "accuracy"
    }
    result = measure_bank(
        trace, predictor, estimators, subsumes=_bank_subsumes(families)
    )
    return MeasurementCell(
        predictor=predictor_name,
        workload=workload,
        families=families,
        quadrants=result.quadrants,
        accuracy=result.accuracy,
        branches=result.branches,
        mispredictions=result.mispredictions,
    )


@lru_cache(maxsize=512)
def measurement_cell(
    predictor_name: str,
    workload: str,
    iterations: Optional[int],
    families: Tuple[str, ...],
) -> MeasurementCell:
    """The estimator-bank measurement of one (predictor, workload) pair.

    This is the unit the DAG's ``measurement`` artifacts map to and the
    parallel warm waves fan out over; memoised in process and persisted
    in the artifact cache keyed by the exact family set.
    """
    families = tuple(families)
    return get_cache().cached(
        "measurement",
        lambda: _compute_measurement_cell(
            predictor_name, workload, iterations, families
        ),
        predictor=predictor_name,
        workload=workload,
        iterations=iterations,
        families=list(families),
        profile=profile_fingerprint(workload),
    )


#: The battery-wide measurement plan, installed by the runner/workers:
#: predictor -> union of families every selected experiment wants, so
#: all of them share one bank cell per (workload, predictor) pair.
_ACTIVE_PLAN: Dict[str, Tuple[str, ...]] = {}


def activate_measurement_plan(plan) -> None:
    """Install a battery-wide family plan (``measurement_plan`` output)."""
    _ACTIVE_PLAN.clear()
    _ACTIVE_PLAN.update(
        {predictor: tuple(families) for predictor, families in plan}
    )


def deactivate_measurement_plan() -> None:
    _ACTIVE_PLAN.clear()


def bank_families(predictor_name: str, need: Sequence[str]) -> Tuple[str, ...]:
    """The family set to measure for ``predictor_name``.

    Under an active battery plan that covers ``need``, the plan's union
    (so every consumer shares one cell); otherwise just ``need`` --
    a standalone ``repro run tab3`` never over-computes.
    """
    needed = tuple(sorted(set(need)))
    planned = _ACTIVE_PLAN.get(predictor_name)
    if planned is not None and set(needed) <= set(planned):
        return planned
    return needed


def _measurement(
    predictor_name: str,
    workload: str,
    iterations: Optional[int],
    need: Sequence[str],
) -> MeasurementCell:
    return measurement_cell(
        predictor_name, workload, iterations, bank_families(predictor_name, need)
    )


def table2_workload(
    predictor_name: str, workload: str, iterations: Optional[int]
) -> Tuple[Dict[str, QuadrantCounts], float]:
    """Standard-estimator quadrants + accuracy for one (predictor,
    workload) cell, served from the estimator bank."""
    cell = _measurement(predictor_name, workload, iterations, STANDARD_FAMILIES)
    quadrants = {name: cell.quadrants[name] for name in ESTIMATOR_ORDER}
    return quadrants, cell.accuracy


def _table2_measurements(predictor_name: str, scale_key, workloads: Tuple[str, ...]):
    """Per-workload quadrant tables for the four standard estimators."""
    iterations = scale_key[0]
    per_workload: Dict[str, Dict[str, QuadrantCounts]] = {}
    accuracies: Dict[str, float] = {}
    for workload in workloads:
        quadrants, accuracy = table2_workload(predictor_name, workload, iterations)
        per_workload[workload] = quadrants
        accuracies[workload] = accuracy
    return per_workload, accuracies


def clear_memoised() -> None:
    """Drop the in-process memo tier (the disk tier is untouched).

    Tests use this to force the next access through the artifact
    cache; it bounds memory in long-lived processes too.
    """
    from ..engine import clear_columnar_cache
    from .speculation import clear_speculation_memoised

    _trace.cache_clear()
    clear_columnar_cache()
    clear_decoded_cache()
    _static_sites.cache_clear()
    _pipeline_result.cache_clear()
    measurement_cell.cache_clear()
    clear_speculation_memoised()


# ----------------------------------------------------------------------
# fig1: parametric PVP/PVN relations
# ----------------------------------------------------------------------


def experiment_figure1(scale: Scale = FULL) -> ExperimentResult:
    """Figure 1: closed-form PVP/PVN trajectories (no simulation)."""
    result = ExperimentResult(
        "fig1", "Parametric PVP/PVN vs SENS, SPEC and accuracy"
    )
    curves = figure1_family()
    for curve in curves:
        table = TextTable(
            title=f"Figure 1 curve: {curve.label}",
            headers=[curve.varying, "pvp", "pvn"],
        )
        for param, pvp, pvn in curve.decile_markers():
            table.add_row([f"{param:.1f}", pct1(pvp), pct1(pvn)])
        result.tables.append(table)
    result.data["curves"] = curves
    return result


# ----------------------------------------------------------------------
# tab1: program characteristics
# ----------------------------------------------------------------------


def experiment_table1(scale: Scale = FULL) -> ExperimentResult:
    """Table 1: instruction counts, branch counts, accuracies, ratio."""
    result = ExperimentResult("tab1", "Program characteristics")
    table = TextTable(
        title="Table 1: committed vs all instructions (gshare pipeline)",
        headers=[
            "application",
            "instr",
            "cond.br",
            "gshare",
            "McF.",
            "SAg",
            "all/committed",
        ],
    )
    ratios = {}
    accuracies = {}
    for workload in scale.workloads:
        run = workload_run(workload, scale.iterations)
        accs = {
            name: _measurement(
                name, workload, scale.iterations, ("accuracy",)
            ).accuracy
            for name in PREDICTORS
        }
        accuracies[workload] = accs
        pipe = _pipeline_result(
            workload,
            "gshare",
            scale.iterations,
            scale.pipeline_instructions,
            segment_instructions=scale.segment_instructions,
            backend=scale.backend,
        )
        # metric_or_none policy: an empty pipeline run renders as n/a,
        # never as a fabricated 0.00 ratio
        ratio = pipe.stats.fetch_to_commit_ratio_or_none()
        ratios[workload] = ratio
        table.add_row(
            [
                workload,
                f"{run.stats.instructions:,}",
                f"{run.stats.branches:,}",
                pct1(accs["gshare"]),
                pct1(accs["mcfarling"]),
                pct1(accs["sag"]),
                "n/a" if ratio is None else f"{ratio:.2f}",
            ]
        )
    table.add_note(
        "paper: the processor issues 20-100% more instructions than commit"
        " (ratio 1.2-2.0); accuracies are committed-branch prediction rates"
    )
    result.tables.append(table)
    result.data["ratios"] = ratios
    result.data["accuracies"] = accuracies
    return result


# ----------------------------------------------------------------------
# tab2: the four estimators over three predictors
# ----------------------------------------------------------------------


def experiment_table2(scale: Scale = FULL) -> ExperimentResult:
    """Table 2: SENS/SPEC/PVP/PVN of each estimator per predictor."""
    result = ExperimentResult(
        "tab2", "Confidence estimator comparison (suite averages)"
    )
    averages: Dict[Tuple[str, str], QuadrantCounts] = {}
    for predictor_name in PREDICTORS:
        per_workload, accuracies = _table2_measurements(
            predictor_name, scale.key(), scale.workloads
        )
        table = TextTable(
            title=f"Table 2 ({predictor_name} predictor)",
            headers=["estimator", "sens", "spec", "pvp", "pvn", "paper"],
        )
        for estimator in ESTIMATOR_ORDER:
            quadrant = average_quadrants(
                [per_workload[w][estimator] for w in scale.workloads]
            )
            averages[(predictor_name, estimator)] = quadrant
            reference = paper_values.TABLE2.get((predictor_name, estimator))
            table.add_row(
                [
                    ESTIMATOR_LABELS[estimator],
                    pct(quadrant.metric_or_none("sens")),
                    pct(quadrant.metric_or_none("spec")),
                    pct(quadrant.metric_or_none("pvp")),
                    pct(quadrant.metric_or_none("pvn")),
                    paper_values.format_reference(reference) if reference else "--",
                ]
            )
        mean_accuracy = sum(accuracies.values()) / len(accuracies)
        table.add_note(f"suite mean prediction accuracy: {mean_accuracy:.1%}")
        result.tables.append(table)
    result.data["averages"] = averages
    return result


def experiment_table2_detail(scale: Scale = FULL) -> ExperimentResult:
    """Per-application estimator detail (the tech-report companion of
    Table 2), with 95% Wilson intervals on PVN."""
    from ..metrics.stats import format_with_interval

    result = ExperimentResult(
        "tab2d", "Per-application estimator detail with intervals"
    )
    per_application: Dict[Tuple[str, str, str], QuadrantCounts] = {}
    for predictor_name in PREDICTORS:
        per_workload, accuracies = _table2_measurements(
            predictor_name, scale.key(), scale.workloads
        )
        table = TextTable(
            title=f"Per-application detail ({predictor_name} predictor)",
            headers=["application", "estimator", "sens", "spec", "pvp", "pvn (95% CI)"],
        )
        for workload in scale.workloads:
            for estimator in ESTIMATOR_ORDER:
                quadrant = per_workload[workload][estimator]
                per_application[(predictor_name, workload, estimator)] = quadrant
                table.add_row(
                    [
                        workload,
                        estimator,
                        pct(quadrant.metric_or_none("sens")),
                        pct(quadrant.metric_or_none("spec")),
                        pct(quadrant.metric_or_none("pvp")),
                        format_with_interval(quadrant, "pvn"),
                    ]
                )
            table.add_row(
                [
                    workload,
                    "(accuracy)",
                    "",
                    "",
                    "",
                    pct1(accuracies[workload]),
                ]
            )
        result.tables.append(table)
    result.data["per_application"] = per_application
    return result


# ----------------------------------------------------------------------
# fig3: enhanced vs original JRS index
# ----------------------------------------------------------------------


def _jrs_sweep(
    scale: Scale,
    predictor_name: str,
    table_size: int,
    enhanced: bool,
    thresholds: Sequence[int],
) -> SweepLine:
    lines = []
    for workload in scale.workloads:
        trace = _bank_trace(workload, scale.iterations)
        histogram = jrs_value_histogram(
            trace,
            make_predictor(predictor_name),
            table_size=table_size,
            enhanced=enhanced,
        )
        lines.append(histogram.sweep(list(thresholds), workload))
    label = f"{table_size} MDCs{' enhanced' if enhanced else ''}"
    return average_sweep_lines(lines, label)


def experiment_figure3(scale: Scale = FULL) -> ExperimentResult:
    """Figure 3: the enhanced (prediction-in-index) JRS variant wins."""
    result = ExperimentResult("fig3", "Enhanced JRS confidence estimator")
    thresholds = list(range(0, 17))
    enhanced = _jrs_sweep(scale, "gshare", 4096, True, thresholds)
    original = _jrs_sweep(scale, "gshare", 4096, False, thresholds)
    table = TextTable(
        title="Figure 3: JRS with/without prediction bit in the MDC index"
        " (gshare, 4096 4-bit MDCs)",
        headers=["threshold", "pvp(enh)", "pvn(enh)", "pvp(orig)", "pvn(orig)"],
    )
    for position, threshold in enumerate(thresholds):
        enhanced_quadrant = enhanced.points[position].quadrant
        original_quadrant = original.points[position].quadrant
        table.add_row(
            [
                threshold,
                pct1(enhanced_quadrant.metric_or_none("pvp")),
                pct1(enhanced_quadrant.metric_or_none("pvn")),
                pct1(original_quadrant.metric_or_none("pvp")),
                pct1(original_quadrant.metric_or_none("pvn")),
            ]
        )
    result.tables.append(table)
    result.data["enhanced"] = enhanced
    result.data["original"] = original
    return result


# ----------------------------------------------------------------------
# fig4/fig5: JRS design space
# ----------------------------------------------------------------------


def _jrs_design_space(
    scale: Scale, predictor_name: str, experiment_id: str, figure_name: str
) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id, f"JRS design space on {predictor_name} ({figure_name})"
    )
    thresholds = list(range(0, 17))
    table_sizes = (64, 256, 1024, 4096)
    lines = {
        size: _jrs_sweep(scale, predictor_name, size, True, thresholds)
        for size in table_sizes
    }
    table = TextTable(
        title=f"{figure_name}: PVP/PVN per threshold, one line per MDC table size"
        f" ({predictor_name})",
        headers=["threshold"]
        + [f"pvp@{size}" for size in table_sizes]
        + [f"pvn@{size}" for size in table_sizes],
    )
    for position, threshold in enumerate(thresholds):
        row = [threshold]
        row.extend(
            pct1(lines[size].points[position].quadrant.metric_or_none("pvp"))
            for size in table_sizes
        )
        row.extend(
            pct1(lines[size].points[position].quadrant.metric_or_none("pvn"))
            for size in table_sizes
        )
        table.add_row(row)
    table.add_note(
        "threshold 16 is unreachable for a 4-bit MDC: everything is marked"
        " low-confidence and the PVN equals the misprediction rate"
    )
    result.tables.append(table)
    result.data["lines"] = lines
    return result


def experiment_figure4(scale: Scale = FULL) -> ExperimentResult:
    """Figure 4: JRS size/threshold sweep on gshare."""
    return _jrs_design_space(scale, "gshare", "fig4", "Figure 4")


def experiment_figure5(scale: Scale = FULL) -> ExperimentResult:
    """Figure 5: JRS size/threshold sweep on McFarling."""
    return _jrs_design_space(scale, "mcfarling", "fig5", "Figure 5")


# ----------------------------------------------------------------------
# tab3: McFarling saturating-counter variants
# ----------------------------------------------------------------------


def experiment_table3(scale: Scale = FULL) -> ExperimentResult:
    """Table 3: Both-Strong vs Either-Strong per application."""
    result = ExperimentResult(
        "tab3", "Saturating-counter variants on McFarling"
    )
    table = TextTable(
        title="Table 3: Both Strong vs Either Strong (McFarling predictor)",
        headers=[
            "application",
            "sens(B)",
            "spec(B)",
            "pvp(B)",
            "pvn(B)",
            "sens(E)",
            "spec(E)",
            "pvp(E)",
            "pvn(E)",
        ],
    )
    both_quadrants = []
    either_quadrants = []
    for workload in scale.workloads:
        cell = _measurement(
            "mcfarling", workload, scale.iterations, ("satcnt", "satcnt-either")
        )
        both = cell.quadrants["satcnt"]
        either = cell.quadrants["satcnt-either"]
        both_quadrants.append(both)
        either_quadrants.append(either)
        table.add_row(
            [workload]
            + [pct(both.metric_or_none(m)) for m in ("sens", "spec", "pvp", "pvn")]
            + [pct(either.metric_or_none(m)) for m in ("sens", "spec", "pvp", "pvn")]
        )
    both_mean = average_quadrants(both_quadrants)
    either_mean = average_quadrants(either_quadrants)
    table.add_row(
        ["Mean"]
        + [pct(both_mean.metric_or_none(m)) for m in ("sens", "spec", "pvp", "pvn")]
        + [pct(either_mean.metric_or_none(m)) for m in ("sens", "spec", "pvp", "pvn")]
    )
    table.add_note("paper means (Both Strong): sens 67%, spec 78%")
    result.tables.append(table)
    result.data["both_mean"] = both_mean
    result.data["either_mean"] = either_mean
    return result


# ----------------------------------------------------------------------
# figs 6-9: misprediction distance
# ----------------------------------------------------------------------


def _merge_curves(curves: Sequence[DistanceCurve], label: str) -> DistanceCurve:
    """Merge per-workload curves by summing bucket populations."""
    depth = max(len(curve.buckets) for curve in curves)
    branches = [0] * depth
    misses = [0] * depth
    for curve in curves:
        for bucket in curve.buckets:
            branches[bucket.distance] += bucket.branches
            misses[bucket.distance] += bucket.mispredictions
    buckets = tuple(
        DistanceBucket(distance=d, branches=branches[d], mispredictions=misses[d])
        for d in range(depth)
    )
    return DistanceCurve(
        label=label,
        buckets=buckets,
        total_branches=sum(branches),
        total_mispredictions=sum(misses),
    )


def _distance_figure(
    scale: Scale, predictor_name: str, kind: str, experiment_id: str, figure_name: str
) -> ExperimentResult:
    curve_fn = (
        precise_distance_curve if kind == "precise" else perceived_distance_curve
    )
    all_curves = []
    committed_curves = []
    window_depths: Dict[int, int] = {}
    for workload in scale.workloads:
        pipe = _pipeline_result(
            workload,
            predictor_name,
            scale.iterations,
            scale.pipeline_instructions,
            segment_instructions=scale.segment_instructions,
            backend=scale.backend,
        )
        records = pipe.branch_records
        all_curves.append(curve_fn(records, population="all"))
        committed_curves.append(curve_fn(records, population="committed"))
        # backends with a real in-flight window (ooo) record the window
        # depth seen at every misprediction recovery; aggregate it so
        # the report can put backend distance distributions side by side
        for depth, count in pipe.stats.extra.get(
            DEPTH_HISTOGRAM_KEY, {}
        ).items():
            window_depths[depth] = window_depths.get(depth, 0) + count
    merged_all = _merge_curves(all_curves, f"{kind}/all")
    merged_committed = _merge_curves(committed_curves, f"{kind}/committed")
    result = ExperimentResult(
        experiment_id,
        f"{figure_name}: {kind} misprediction distance ({predictor_name})",
    )
    table = TextTable(
        title=f"{figure_name}: misprediction rate vs {kind} distance"
        f" ({predictor_name}, suite aggregate)",
        headers=["distance", "all branches", "committed branches"],
    )
    depth = len(merged_all.buckets)
    for distance in range(depth):
        tag = f">={distance}" if distance == depth - 1 else str(distance)
        table.add_row(
            [
                tag,
                pct1(merged_all.buckets[distance].misprediction_rate),
                pct1(merged_committed.buckets[distance].misprediction_rate),
            ]
        )
    table.add_row(
        ["average", pct1(merged_all.average_rate), pct1(merged_committed.average_rate)]
    )
    table.add_note(
        "clustering: rates near distance 0 sit above the average line"
    )
    result.tables.append(table)
    result.data["all"] = merged_all
    result.data["committed"] = merged_committed
    # only window-tracking backends populate the depth histogram, so
    # the in-order report (and its golden bytes) never grows this table
    if kind == "perceived" and window_depths:
        result.tables.append(
            _window_depth_table(window_depths, scale.backend, figure_name)
        )
        result.data["window_depth"] = dict(sorted(window_depths.items()))
    return result


#: Bucket upper bounds for the window-depth distribution table.
_DEPTH_BUCKETS = (0, 2, 4, 8, 16, 32, 64, 128, 256)


def _window_depth_table(
    window_depths: Dict[int, int], backend: str, figure_name: str
) -> TextTable:
    """Distribution of in-flight window depth at mispredict recovery.

    The perceived-distance story depends on how much wrong-path work a
    backend has in flight when a misprediction is detected; this table
    makes the two backends' distributions directly comparable.
    """
    total = sum(window_depths.values())
    table = TextTable(
        title=f"{figure_name}: in-flight window depth at misprediction "
        f"recovery ({backend} backend)",
        headers=["window depth", "mispredicts", "share"],
    )
    lower = 0
    for upper in _DEPTH_BUCKETS:
        count = sum(
            n for depth, n in window_depths.items() if lower <= depth <= upper
        )
        tag = str(upper) if upper <= max(lower, 1) else f"{lower}-{upper}"
        table.add_row([tag, str(count), pct1(count / total if total else 0.0)])
        lower = upper + 1
    overflow = sum(
        n for depth, n in window_depths.items() if depth > _DEPTH_BUCKETS[-1]
    )
    if overflow:
        table.add_row(
            [
                f">{_DEPTH_BUCKETS[-1]}",
                str(overflow),
                pct1(overflow / total if total else 0.0),
            ]
        )
    mean = (
        sum(depth * n for depth, n in window_depths.items()) / total
        if total
        else 0.0
    )
    deepest = max(window_depths) if window_depths else 0
    table.add_note(
        f"{total} recoveries; mean depth {mean:.1f}, max {deepest} "
        f"instructions in flight"
    )
    return table


def experiment_figure6(scale: Scale = FULL) -> ExperimentResult:
    """Figure 6: precise distance, gshare."""
    return _distance_figure(scale, "gshare", "precise", "fig6", "Figure 6")


def experiment_figure7(scale: Scale = FULL) -> ExperimentResult:
    """Figure 7: precise distance, McFarling."""
    return _distance_figure(scale, "mcfarling", "precise", "fig7", "Figure 7")


def experiment_figure8(scale: Scale = FULL) -> ExperimentResult:
    """Figure 8: perceived distance, gshare."""
    return _distance_figure(scale, "gshare", "perceived", "fig8", "Figure 8")


def experiment_figure9(scale: Scale = FULL) -> ExperimentResult:
    """Figure 9: perceived distance, McFarling."""
    return _distance_figure(scale, "mcfarling", "perceived", "fig9", "Figure 9")


# ----------------------------------------------------------------------
# tab4: misprediction-distance estimator
# ----------------------------------------------------------------------


def experiment_table4(scale: Scale = FULL) -> ExperimentResult:
    """Table 4: the one-counter distance estimator vs the table ones."""
    result = ExperimentResult(
        "tab4", "Misprediction distance as confidence estimator"
    )
    table = TextTable(
        title="Table 4: distance estimator sweep vs reference estimators",
        headers=["estimator", "thr", "predictor", "sens", "spec", "pvp", "pvn", "paper"],
    )
    data: Dict[Tuple[str, str, object], QuadrantCounts] = {}

    def add_reference_rows(predictor_name: str) -> None:
        per_workload, __ = _table2_measurements(
            predictor_name, scale.key(), scale.workloads
        )
        for estimator, threshold_label in (
            ("jrs", ">= 15"),
            ("satcnt", "N.A."),
            ("static", "> 90%"),
        ):
            quadrant = average_quadrants(
                [per_workload[w][estimator] for w in scale.workloads]
            )
            data[(estimator, predictor_name, None)] = quadrant
            reference = paper_values.TABLE2.get((predictor_name, estimator))
            table.add_row(
                [
                    ESTIMATOR_LABELS[estimator].split(",")[0],
                    threshold_label,
                    predictor_name,
                    pct(quadrant.metric_or_none("sens")),
                    pct(quadrant.metric_or_none("spec")),
                    pct(quadrant.metric_or_none("pvp")),
                    pct(quadrant.metric_or_none("pvn")),
                    paper_values.format_reference(reference) if reference else "--",
                ]
            )

    for predictor_name in ("gshare", "mcfarling"):
        add_reference_rows(predictor_name)
        lines = []
        for workload in scale.workloads:
            trace = _bank_trace(workload, scale.iterations)
            histogram = distance_value_histogram(
                trace, make_predictor(predictor_name), max_distance=16
            )
            lines.append(histogram.sweep(list(range(2, 9)), workload))
        averaged = average_sweep_lines(lines, f"distance/{predictor_name}")
        for point in averaged.points:
            distance_threshold = point.threshold - 1  # value>=t  <=>  dist>t-1
            quadrant = point.quadrant
            data[("distance", predictor_name, distance_threshold)] = quadrant
            reference = paper_values.TABLE4_DISTANCE.get(
                (predictor_name, distance_threshold)
            )
            table.add_row(
                [
                    "Distance",
                    f"> {distance_threshold}",
                    predictor_name,
                    pct(quadrant.metric_or_none("sens")),
                    pct(quadrant.metric_or_none("spec")),
                    pct(quadrant.metric_or_none("pvp")),
                    pct(quadrant.metric_or_none("pvn")),
                    paper_values.format_reference(reference) if reference else "--",
                ]
            )

    # the SAg pattern-history row the paper closes the table with
    sag_per_workload, __ = _table2_measurements("sag", scale.key(), scale.workloads)
    sag_pattern = average_quadrants(
        [sag_per_workload[w]["pattern"] for w in scale.workloads]
    )
    data[("pattern", "sag", None)] = sag_pattern
    table.add_row(
        [
            "Hist. Pattern",
            "N.A.",
            "sag",
            pct(sag_pattern.metric_or_none("sens")),
            pct(sag_pattern.metric_or_none("spec")),
            pct(sag_pattern.metric_or_none("pvp")),
            pct(sag_pattern.metric_or_none("pvn")),
            paper_values.format_reference(paper_values.TABLE2[("sag", "pattern")]),
        ]
    )
    result.tables.append(table)
    result.data["rows"] = data
    return result


# ----------------------------------------------------------------------
# boost: mis-estimation clustering and PVN boosting (§4.2)
# ----------------------------------------------------------------------


def experiment_boosting(scale: Scale = FULL) -> ExperimentResult:
    """§4.2: mis-estimation distance decay and boosted PVN."""
    result = ExperimentResult(
        "boost", "Mis-estimation clustering and confidence boosting"
    )
    configurations = (
        ("gshare", "jrs"),
        ("mcfarling", "jrs"),
        ("mcfarling", "satcnt"),
    )

    def build_estimator(kind: str, predictor):
        if kind == "jrs":
            return JRSEstimator(threshold=15, enhanced=True)
        return SaturatingCountersEstimator.for_predictor(predictor)

    decay_table = TextTable(
        title="Mis-estimation rate vs distance since last mis-estimation",
        headers=["config", "d=0", "d=4", "d>=8", "average"],
    )
    boost_table = TextTable(
        title="Boosted PVN: empirical vs Bernoulli model 1-(1-pvn)^k",
        headers=["config", "base pvn", "k", "events", "empirical", "analytic"],
    )
    curves = {}
    boosting = {}
    for predictor_name, estimator_kind in configurations:
        label = f"{estimator_kind}@{predictor_name}"
        # each analysis consumes fresh state
        workload_curves = []
        accumulated = None
        for workload in scale.workloads:
            trace = _bank_trace(workload, scale.iterations)
            predictor = make_predictor(predictor_name)
            curve = misestimation_distance(
                trace, predictor, build_estimator(estimator_kind, predictor)
            )
            workload_curves.append(curve)
        merged = _merge_curves(workload_curves, label)
        curves[label] = merged
        tail = merged.buckets[8:]
        tail_branches = sum(bucket.branches for bucket in tail)
        tail_misses = sum(bucket.mispredictions for bucket in tail)
        decay_table.add_row(
            [
                label,
                pct1(merged.buckets[0].misprediction_rate),
                pct1(merged.buckets[4].misprediction_rate),
                pct1(tail_misses / tail_branches if tail_branches else 0.0),
                pct1(merged.average_rate),
            ]
        )

        per_config = []
        for workload in scale.workloads:
            trace = _bank_trace(workload, scale.iterations)
            predictor = make_predictor(predictor_name)
            per_config.append(
                measure_boosting(
                    trace,
                    predictor,
                    build_estimator(estimator_kind, predictor),
                    ks=[1, 2, 3],
                )
            )
        # pool events across the suite
        for position, k in enumerate((1, 2, 3)):
            events = sum(results[position].events for results in per_config)
            hits = sum(
                results[position].events_with_misprediction for results in per_config
            )
            lc_events = sum(results[0].events for results in per_config)
            lc_hits = sum(
                results[0].events_with_misprediction for results in per_config
            )
            base = lc_hits / lc_events if lc_events else 0.0
            empirical = hits / events if events else 0.0
            boosting[(label, k)] = (base, empirical, boosted_pvn(base, k))
            boost_table.add_row(
                [
                    label,
                    pct1(base),
                    k,
                    events,
                    pct1(empirical),
                    pct1(boosted_pvn(base, k)),
                ]
            )
    decay_table.add_note(
        "paper: ~45% right after a mis-estimation, ~41% at distance 4,"
        " ~33% past distance 8"
    )
    result.tables.append(decay_table)
    result.tables.append(boost_table)
    result.data["curves"] = curves
    result.data["boosting"] = boosting
    return result


# ----------------------------------------------------------------------
# registry: every paper experiment declares itself as a spec
# ----------------------------------------------------------------------

#: Shorthands for the artifact dependencies the paper battery shares.
_TRACE = ArtifactDep(kind="trace")
#: Columnar lowering of the trace -- declared by every experiment whose
#: measurement passes replay through the vector engine, so checkpoint
#: fingerprints (and the warm plan) track the representation change.
_COLUMNAR = ArtifactDep(kind="trace-columnar")


def _measurement_deps(
    predictors: Sequence[str], families: Tuple[str, ...]
) -> Tuple[ArtifactDep, ...]:
    return tuple(
        ArtifactDep(kind="measurement", predictor=name, families=families)
        for name in predictors
    )


def _pipeline_deps(predictors: Sequence[str]) -> Tuple[ArtifactDep, ...]:
    return tuple(
        ArtifactDep(kind="pipeline", predictor=name) for name in predictors
    )


for _spec in (
    ExperimentSpec(
        experiment_id="fig1",
        title="Parametric PVP/PVN vs SENS, SPEC and accuracy",
        run=experiment_figure1,
        section="paper",
        order=10,
        paper_ref="Figure 1",
        produces=(),
        deps=(),
        plot=True,
    ),
    ExperimentSpec(
        experiment_id="tab1",
        title="Program characteristics",
        run=experiment_table1,
        section="paper",
        order=20,
        paper_ref="Table 1",
        produces=("trace", "pipeline", "measurement"),
        deps=(_TRACE, _COLUMNAR)
        + _pipeline_deps(("gshare",))
        + _measurement_deps(PREDICTORS, ("accuracy",)),
    ),
    ExperimentSpec(
        experiment_id="tab2",
        title="Confidence estimator comparison (suite averages)",
        run=experiment_table2,
        section="paper",
        order=30,
        paper_ref="Table 2",
        produces=("trace", "measurement"),
        deps=(_TRACE, _COLUMNAR) + _measurement_deps(PREDICTORS, STANDARD_FAMILIES),
    ),
    ExperimentSpec(
        experiment_id="tab2d",
        title="Per-application estimator detail with intervals",
        run=experiment_table2_detail,
        section="paper",
        order=40,
        paper_ref="Table 2 (tech-report detail)",
        produces=("trace", "measurement"),
        deps=(_TRACE, _COLUMNAR) + _measurement_deps(PREDICTORS, STANDARD_FAMILIES),
    ),
    ExperimentSpec(
        experiment_id="fig3",
        title="Enhanced JRS confidence estimator",
        run=experiment_figure3,
        section="paper",
        order=50,
        paper_ref="Figure 3",
        produces=("trace",),
        deps=(_TRACE, _COLUMNAR),
        plot=True,
    ),
    ExperimentSpec(
        experiment_id="fig4",
        title="JRS design space on gshare (Figure 4)",
        run=experiment_figure4,
        section="paper",
        order=60,
        paper_ref="Figure 4",
        produces=("trace",),
        deps=(_TRACE, _COLUMNAR),
        plot=True,
    ),
    ExperimentSpec(
        experiment_id="fig5",
        title="JRS design space on McFarling (Figure 5)",
        run=experiment_figure5,
        section="paper",
        order=70,
        paper_ref="Figure 5",
        produces=("trace",),
        deps=(_TRACE, _COLUMNAR),
        plot=True,
    ),
    ExperimentSpec(
        experiment_id="tab3",
        title="Saturating-counter variants on McFarling",
        run=experiment_table3,
        section="paper",
        order=80,
        paper_ref="Table 3",
        produces=("trace", "measurement"),
        deps=(_TRACE, _COLUMNAR)
        + _measurement_deps(("mcfarling",), ("satcnt", "satcnt-either")),
    ),
    ExperimentSpec(
        experiment_id="fig6",
        title="Figure 6: precise misprediction distance (gshare)",
        run=experiment_figure6,
        section="paper",
        order=90,
        paper_ref="Figure 6",
        produces=("trace", "pipeline"),
        deps=(_TRACE,) + _pipeline_deps(("gshare",)),
        plot=True,
    ),
    ExperimentSpec(
        experiment_id="fig7",
        title="Figure 7: precise misprediction distance (McFarling)",
        run=experiment_figure7,
        section="paper",
        order=100,
        paper_ref="Figure 7",
        produces=("trace", "pipeline"),
        deps=(_TRACE,) + _pipeline_deps(("mcfarling",)),
        plot=True,
    ),
    ExperimentSpec(
        experiment_id="fig8",
        title="Figure 8: perceived misprediction distance (gshare)",
        run=experiment_figure8,
        section="paper",
        order=110,
        paper_ref="Figure 8",
        produces=("trace", "pipeline"),
        deps=(_TRACE,) + _pipeline_deps(("gshare",)),
        plot=True,
    ),
    ExperimentSpec(
        experiment_id="fig9",
        title="Figure 9: perceived misprediction distance (McFarling)",
        run=experiment_figure9,
        section="paper",
        order=120,
        paper_ref="Figure 9",
        produces=("trace", "pipeline"),
        deps=(_TRACE,) + _pipeline_deps(("mcfarling",)),
        plot=True,
    ),
    ExperimentSpec(
        experiment_id="tab4",
        title="Misprediction distance as confidence estimator",
        run=experiment_table4,
        section="paper",
        order=130,
        paper_ref="Table 4",
        produces=("trace", "measurement"),
        deps=(_TRACE, _COLUMNAR)
        + _measurement_deps(("gshare", "mcfarling", "sag"), STANDARD_FAMILIES),
    ),
    ExperimentSpec(
        experiment_id="boost",
        title="Mis-estimation clustering and confidence boosting",
        run=experiment_boosting,
        section="paper",
        order=140,
        paper_ref="Section 4.2",
        produces=("trace",),
        deps=(_TRACE, _COLUMNAR),
    ),
):
    SPECS.register(_spec)

#: Read-only ``id -> run function`` view over the registry, kept for
#: callers that predate the spec refactor.
EXPERIMENTS = ExperimentFunctions(SPECS)

# Loading the speculation-control battery registers its specs in SPECS
# (see the bottom of harness/speculation.py); the module imports the
# scaffolding above, so it must load after this module's registrations
# have run, whichever of the two modules is imported first.
from . import speculation as _speculation  # noqa: E402,F401


def run_experiment(experiment_id: str, scale: Scale = FULL) -> ExperimentResult:
    """Run one experiment by id (see :data:`repro.harness.spec.SPECS`)."""
    try:
        spec = SPECS[experiment_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; "
            f"available: {', '.join(SPECS)}"
        ) from None
    return spec.run(scale)
