"""Reference numbers transcribed from the paper, for side-by-side
comparison in experiment output and EXPERIMENTS.md.

Only the values that are legible in the source text are recorded.
All are suite averages computed the paper's way (mean of normalised
quadrants, then ratios).  Keys are (sens, spec, pvp, pvn).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

Metrics = Tuple[Optional[float], Optional[float], Optional[float], Optional[float]]

#: Table 2 / Table 4 reference rows: (predictor, estimator) -> metrics.
TABLE2: Dict[Tuple[str, str], Metrics] = {
    ("gshare", "jrs"): (0.56, 0.96, 0.98, 0.30),
    ("gshare", "satcnt"): (0.88, 0.42, 0.88, 0.41),
    ("gshare", "pattern"): (0.17, 0.94, 0.93, None),
    ("gshare", "static"): (0.55, 0.89, 0.96, 0.28),
    ("mcfarling", "jrs"): (0.64, 0.93, 0.99, 0.23),
    ("mcfarling", "satcnt"): (0.67, 0.78, 0.96, 0.21),
    ("mcfarling", "static"): (0.72, 0.88, 0.98, 0.26),
    ("sag", "pattern"): (0.73, 0.81, 0.97, 0.26),
}

#: Table 4 misprediction-distance estimator rows:
#: (predictor, distance threshold) -> metrics.
TABLE4_DISTANCE: Dict[Tuple[str, int], Metrics] = {
    ("gshare", 1): (0.86, 0.36, 0.88, 0.32),
    ("gshare", 2): (0.77, 0.56, 0.90, 0.30),
    ("gshare", 3): (0.69, 0.67, 0.92, 0.28),
    ("gshare", 4): (0.64, 0.74, 0.93, 0.27),
    ("gshare", 5): (0.59, 0.78, 0.94, 0.26),
    ("gshare", 6): (0.55, 0.81, 0.94, 0.25),
    ("gshare", 7): (0.52, 0.83, 0.94, 0.24),
    ("mcfarling", 1): (0.90, 0.19, 0.92, 0.16),
    ("mcfarling", 2): (0.81, 0.34, 0.92, 0.16),
    ("mcfarling", 3): (0.75, 0.46, 0.93, 0.16),
    ("mcfarling", 4): (0.69, 0.55, 0.94, 0.15),
    ("mcfarling", 5): (0.64, 0.62, 0.94, 0.15),
    ("mcfarling", 6): (0.60, 0.67, 0.95, 0.15),
    ("mcfarling", 7): (0.57, 0.71, 0.95, 0.14),
}

#: Table 3 suite means: variant -> metrics (McFarling predictor).
TABLE3_MEAN: Dict[str, Metrics] = {
    "both-strong": (0.67, 0.78, None, None),
}

#: §4.2: mis-estimation rate right after a mis-estimated branch, at
#: distance 4, and past distance 8.
MISESTIMATION_DECAY = (0.45, 0.41, 0.33)

#: Table 1: committed-instruction counts are workload properties of the
#: real SPECint95 runs; the reproduction's synthetic runs are smaller by
#: design.  Only the structural expectation is recorded: the processor
#: issues 20-100% more instructions than it commits.
FETCH_COMMIT_RATIO_RANGE = (1.2, 2.0)


def format_reference(metrics: Metrics) -> str:
    """Render a reference row like 'sens 56% spec 96% ...'."""
    names = ("sens", "spec", "pvp", "pvn")
    parts = []
    for name, value in zip(names, metrics):
        parts.append(f"{name} {value:.0%}" if value is not None else f"{name} --")
    return " ".join(parts)
