"""Experiment-result checkpoints: what ``repro run --resume`` replays.

Every finished experiment is checkpointed into the artifact cache
(kind ``checkpoint``) keyed by its id and the exact scale it ran at, by
both the serial and the parallel paths, *as it finishes* -- so a
battery killed halfway leaves one checkpoint per completed experiment.
Resume mode (:func:`repro.harness.runner.run_all` with ``resume=``)
reads the prior run's journal for ``experiment_finished`` events and
loads the matching checkpoints instead of re-running; a checkpoint that
is missing or corrupt simply demotes the experiment back to "run it
again", so resume can never produce different output than a fresh run.
"""

from __future__ import annotations

import hashlib
import json
from typing import Optional, Tuple

from ..engine import cache as artifact_cache
from ..engine import profile_fingerprint
from ..obs.registry import REGISTRY
from .experiments import ExperimentResult, Scale
from .spec import SPECS

CHECKPOINT_KIND = "checkpoint"


def spec_fingerprint(experiment_id: str, scale: Scale) -> str:
    """Digest of an experiment's declared inputs at one scale.

    Covers the spec's artifact dependency declarations, the profile
    fingerprints of the workloads it will run over, *and* the scale's
    simulation budgets (iterations, pipeline instruction budget,
    segment size), so a checkpoint goes stale when an experiment starts
    depending on different artifacts, a workload profile changes, or
    the budgets it was measured under change -- ``--resume`` after a
    scale bump must re-run, never silently reuse a smaller-budget
    result.  Unregistered ids hash to a constant, keeping the key
    stable for ad-hoc experiment functions.
    """
    spec = SPECS.get(experiment_id)
    payload = {
        "deps": [list(dep.key_parts()) for dep in spec.deps]
        if spec is not None
        else [],
        "profiles": {
            workload: profile_fingerprint(workload)
            for workload in scale.workloads
        },
        "budgets": {
            "iterations": scale.iterations,
            "pipeline_instructions": scale.pipeline_instructions,
            "segment_instructions": scale.segment_instructions,
            "backend": scale.backend,
        },
    }
    digest = hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode("utf-8")
    )
    return digest.hexdigest()[:16]


def checkpoint_key(cache: artifact_cache.ArtifactCache, experiment_id: str, scale: Scale) -> str:
    return cache.key(
        CHECKPOINT_KIND,
        experiment=experiment_id,
        iterations=scale.iterations,
        pipeline_instructions=scale.pipeline_instructions,
        workloads=list(scale.workloads),
        fingerprint=spec_fingerprint(experiment_id, scale),
    )


def store_checkpoint(
    experiment_id: str, scale: Scale, result: ExperimentResult
) -> None:
    """Persist one finished experiment's result (no-op when cache off)."""
    cache = artifact_cache.get_cache()
    if not cache.enabled:
        return
    cache.store(checkpoint_key(cache, experiment_id, scale), result)
    REGISTRY.count("supervisor.checkpoints_stored")


def load_checkpoint(
    experiment_id: str, scale: Scale
) -> Tuple[bool, Optional[ExperimentResult]]:
    """``(hit, result)`` for a previously checkpointed experiment."""
    cache = artifact_cache.get_cache()
    if not cache.enabled:
        return False, None
    hit, value = cache.load(checkpoint_key(cache, experiment_id, scale))
    if hit and not isinstance(value, ExperimentResult):
        # a poisoned entry must not masquerade as a result
        return False, None
    if hit:
        REGISTRY.count("supervisor.checkpoints_loaded")
    return hit, value
