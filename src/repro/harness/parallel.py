"""Resilient parallel execution of the experiment battery.

The battery is embarrassingly parallel: each experiment replays
independent workload traces through independent predictor/estimator
stacks.  This module fans ``run_all`` out over a
:class:`~concurrent.futures.ProcessPoolExecutor` in three waves:

1. **trace warm-up** -- one task per workload generates/executes the
   program and persists its branch trace in the artifact cache;
2. **heavy-artifact warm-up** -- one task per (workload, predictor)
   cell runs the pipeline simulations and standard-estimator
   measurements the selected experiments will need, again into the
   persistent cache;
3. **experiments** -- one task per experiment, which now mostly reads
   cached artifacts.

Waves 1/2 give intra-experiment (per-workload) parallelism for the
heavy experiments; wave 3 gives inter-experiment parallelism.  Workers
communicate through the content-addressed cache
(:mod:`repro.engine.cache`), so results are deterministic: the merged
output is byte-identical to a serial run, and the merge order is the
caller's selection order regardless of completion order.

Wave 3 runs under a **supervisor** that assumes workers can fail in
every way a long sweep on real hardware fails:

* every task has a wall-clock **timeout** (``REPRO_TASK_TIMEOUT`` /
  ``--task-timeout``; off by default) measured from submission -- a
  hung worker costs one timeout, not the whole battery;
* each failure is **classified** into the taxonomy ``timeout`` /
  ``crash`` / ``corrupt_artifact`` / ``retryable`` / ``fatal`` and
  journaled (``experiment_failed`` with ``classification``) and
  counted (``supervisor.failures.<class>``);
* non-fatal failures get **bounded retries** (``REPRO_TASK_RETRIES``,
  default 2) with deterministic, jitter-free exponential backoff
  (``REPRO_RETRY_BACKOFF`` * 2^(round-1) seconds) -- two identical runs
  retry on an identical schedule;
* a timeout or a broken executor triggers **pool recycling**: the hung
  workers are terminated, the pool is rebuilt, and the round's
  survivors keep their results (``pool_recycled`` journal event);
* when retries are exhausted -- or the pool cannot be (re)built at all
  -- the remaining experiments **degrade to serial** execution in the
  parent, so the battery always completes if a serial run would, with
  byte-identical merged output.

Every finished experiment is checkpointed through
:mod:`repro.harness.checkpoint` as it completes, which is what
``repro run --resume`` replays.  Fault injection for all of the above
lives in :mod:`repro.faults` (``REPRO_FAULTS``); the legacy
``REPRO_CRASH_EXPERIMENTS`` hook is subsumed by it but still honoured.

Workers ship back per-task deltas of the artifact-cache statistics and
the metrics registry (:mod:`repro.obs.registry`); the parent folds both
in, so throughput and cache hit-rate accounting is identical to a
serial run.
"""

from __future__ import annotations

import os
import pickle
import sys
import threading
import time
import traceback
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..engine import cache as artifact_cache
from ..engine import columnar_run, vector_enabled
from ..engine.cache import CacheStats
from ..faults import injector as faults
from ..faults.injector import InjectedCrash
from ..obs.journal import coalesce
from ..obs.registry import REGISTRY, MetricsSnapshot
from ..pipeline import backend_uses_decoded, decoded_run, pipeline_fast_enabled
from .checkpoint import store_checkpoint
from .experiments import (
    EXPERIMENTS,
    ExperimentResult,
    Scale,
    _pipeline_result,
    _trace,
    activate_measurement_plan,
    deactivate_measurement_plan,
    measurement_cell,
    run_experiment,
)
from .shard import segment_count, warm_segment
from .spec import SPECS, ArtifactNode, measurement_plan, topological_levels
from .speculation import eager_cell, gating_cell, inversion_cell

Journal = Optional[object]  # RunJournal | NullJournal; kwarg convenience

#: ``measurement_plan`` output: per-predictor estimator-family unions.
MeasurementPlan = Tuple[Tuple[str, Tuple[str, ...]], ...]

#: Legacy fault-injection hook, now an alias into :mod:`repro.faults`:
#: a comma-separated list of experiment ids whose workers crash.
CRASH_ENV = faults.LEGACY_CRASH_ENV

# ----------------------------------------------------------------------
# supervisor knobs
# ----------------------------------------------------------------------

TIMEOUT_ENV = "REPRO_TASK_TIMEOUT"
RETRIES_ENV = "REPRO_TASK_RETRIES"
BACKOFF_ENV = "REPRO_RETRY_BACKOFF"

#: Additional attempts after the first failure of an experiment.
DEFAULT_RETRIES = 2
#: Base of the deterministic exponential backoff (seconds).
DEFAULT_BACKOFF_S = 0.25

#: The failure taxonomy.  Everything except ``fatal`` is retryable.
FAILURE_CLASSES = ("timeout", "crash", "corrupt_artifact", "retryable", "fatal")

# ----------------------------------------------------------------------
# graceful abort (SIGINT/SIGTERM)
# ----------------------------------------------------------------------

#: Set by the CLI's signal handler; checked at experiment boundaries.
#: A flag (not an exception) so in-flight tasks drain instead of dying
#: mid-write: every result harvested before the abort is checkpointed,
#: which is what keeps ``--resume`` consistent after an interrupt.
_ABORT = threading.Event()


class RunAborted(RuntimeError):
    """The battery was interrupted after draining in-flight work.

    ``results`` maps experiment id -> result for every experiment that
    finished (and was checkpointed) before the abort took effect.
    """

    def __init__(self, results: Optional[Dict[str, "ExperimentResult"]] = None):
        super().__init__("run aborted by signal")
        self.results: Dict[str, ExperimentResult] = dict(results or {})


def request_abort() -> None:
    """Ask the running battery to stop at the next experiment boundary."""
    _ABORT.set()


def clear_abort() -> None:
    _ABORT.clear()


def abort_requested() -> bool:
    return _ABORT.is_set()

_FATAL_TYPES = (MemoryError, KeyboardInterrupt, SystemExit)
_CORRUPT_TYPES = (pickle.UnpicklingError, EOFError)


def classify_failure(error: BaseException) -> str:
    """Place one raised worker/scheduler error in the failure taxonomy."""
    if isinstance(error, FutureTimeoutError):
        return "timeout"
    if isinstance(error, _FATAL_TYPES):
        return "fatal"
    if isinstance(error, (BrokenExecutor, InjectedCrash)):
        return "crash"
    if isinstance(error, _CORRUPT_TYPES):
        return "corrupt_artifact"
    return "retryable"


def _env_float(name: str, default: Optional[float]) -> Optional[float]:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        value = float(raw)
    except ValueError:
        print(
            f"repro: ignoring unparseable {name}={raw!r}", file=sys.stderr
        )
        return default
    return value


def task_timeout_from_env() -> Optional[float]:
    """``REPRO_TASK_TIMEOUT`` in seconds; unset, empty or <= 0 disables."""
    value = _env_float(TIMEOUT_ENV, None)
    return value if value is not None and value > 0 else None


def retries_from_env() -> int:
    value = _env_float(RETRIES_ENV, float(DEFAULT_RETRIES))
    return max(0, int(value))


def backoff_from_env() -> float:
    value = _env_float(BACKOFF_ENV, DEFAULT_BACKOFF_S)
    return max(0.0, value)


WarmTask = Tuple[str, Tuple]


def _plan_families(
    selected: Sequence[str],
    measurement_families: Optional[MeasurementPlan],
) -> Dict[str, Tuple[str, ...]]:
    """Per-predictor family unions governing the measurement cells."""
    if measurement_families is None:
        measurement_families = measurement_plan(
            SPECS[eid] for eid in selected if eid in SPECS
        )
    return {
        predictor: tuple(families)
        for predictor, families in measurement_families
    }


def plan_artifact_nodes(
    selected: Sequence[str],
    scale: Scale,
    measurement_families: Optional[MeasurementPlan] = None,
) -> List[ArtifactNode]:
    """The artifact-dependency DAG ``selected`` needs at ``scale``.

    Every spec's declared :class:`~repro.harness.spec.ArtifactDep` list
    is expanded over the scale's workloads into concrete
    :class:`~repro.harness.spec.ArtifactNode` keys (the exact argument
    tuples the warm workers run), deduplicated across experiments.
    Measurement nodes carry the battery-wide per-predictor family union
    (``measurement_families``, computed from the selection when not
    given), so every consumer of a (workload, predictor) pair shares
    one estimator-bank cell.
    """
    families_by_predictor = _plan_families(selected, measurement_families)
    nodes: Dict[Tuple[str, Tuple], ArtifactNode] = {}

    def add(kind: str, args: Tuple, deps: Tuple = ()) -> Tuple[str, Tuple]:
        key = (kind, args)
        if key not in nodes:
            nodes[key] = ArtifactNode(key=key, deps=deps)
        return key

    for experiment_id in selected:
        spec = SPECS.get(experiment_id)
        if spec is None:
            continue
        for dep in spec.deps:
            uses_decoded = backend_uses_decoded(scale.backend)
            for workload in scale.workloads:
                trace = add("trace", (workload, scale.iterations))
                if dep.kind == "trace":
                    continue
                if dep.kind == "trace-columnar":
                    add(
                        "trace-columnar",
                        (workload, scale.iterations),
                        deps=(trace,),
                    )
                elif dep.kind == "program-decoded":
                    add("program-decoded", (workload, scale.iterations))
                elif dep.kind == "pipeline":
                    # pipeline-backed artifacts read the shared
                    # pre-decoded program (fast path); the worker
                    # no-ops when the fast path is disabled, and
                    # backends without a decoded engine (ooo) skip the
                    # decode node entirely
                    base_deps = (trace,)
                    if uses_decoded:
                        decoded = add(
                            "program-decoded", (workload, scale.iterations)
                        )
                        base_deps = (trace, decoded)
                    chain = segment_count(
                        scale.pipeline_instructions,
                        scale.segment_instructions,
                    )
                    if chain:
                        # segmented cell: a chain of dependent segment
                        # nodes (each resumes the previous snapshot),
                        # then the final run reading the last snapshot;
                        # independent cells parallelise, chains don't
                        previous = base_deps
                        for index in range(chain):
                            segment = add(
                                "pipeline-segment",
                                (
                                    workload,
                                    dep.predictor,
                                    scale.iterations,
                                    scale.pipeline_instructions,
                                    scale.segment_instructions,
                                    index,
                                    scale.backend,
                                ),
                                deps=previous,
                            )
                            previous = (segment,)
                        add(
                            "pipeline",
                            (
                                workload,
                                dep.predictor,
                                scale.iterations,
                                scale.pipeline_instructions,
                                scale.segment_instructions,
                                scale.backend,
                            ),
                            deps=base_deps + previous,
                        )
                    else:
                        add(
                            "pipeline",
                            (
                                workload,
                                dep.predictor,
                                scale.iterations,
                                scale.pipeline_instructions,
                                scale.segment_instructions,
                                scale.backend,
                            ),
                            deps=base_deps,
                        )
                elif dep.kind == "measurement":
                    families = families_by_predictor.get(
                        dep.predictor, tuple(sorted(set(dep.families)))
                    )
                    # the bank replays the columnar form of the trace,
                    # so warm it between the trace and the cells
                    columnar = add(
                        "trace-columnar",
                        (workload, scale.iterations),
                        deps=(trace,),
                    )
                    add(
                        "measurement",
                        (dep.predictor, workload, scale.iterations, families),
                        deps=(trace, columnar),
                    )
                elif dep.kind == "gating":
                    base_deps = (trace,)
                    if uses_decoded:
                        decoded = add(
                            "program-decoded", (workload, scale.iterations)
                        )
                        base_deps = (trace, decoded)
                    add(
                        "gating",
                        (
                            workload,
                            dep.estimator,
                            dep.threshold,
                            scale.iterations,
                            scale.pipeline_instructions,
                            scale.backend,
                        ),
                        deps=base_deps,
                    )
                elif dep.kind == "eager":
                    base_deps = (trace,)
                    if uses_decoded:
                        decoded = add(
                            "program-decoded", (workload, scale.iterations)
                        )
                        base_deps = (trace, decoded)
                    add(
                        "eager",
                        (
                            workload,
                            dep.estimator,
                            scale.iterations,
                            scale.pipeline_instructions,
                            scale.backend,
                        ),
                        deps=base_deps,
                    )
                elif dep.kind == "inversion":
                    add(
                        "inversion",
                        (workload, dep.estimator, scale.iterations),
                        deps=(trace,),
                    )
    return list(nodes.values())


def plan_warm_levels(
    selected: Sequence[str],
    scale: Scale,
    measurement_families: Optional[MeasurementPlan] = None,
) -> List[List[WarmTask]]:
    """The artifact warm-up schedule, one task wave per DAG level.

    A task only ever runs after every artifact it depends on exists;
    tasks within one wave are independent and run concurrently.  This
    is what keeps a segmented cell's ``pipeline-segment`` chain ordered
    (segment ``i`` sits one level below segment ``i + 1``) while
    independent (workload, predictor) cells shard across the pool.
    """
    levels = topological_levels(
        plan_artifact_nodes(selected, scale, measurement_families)
    )
    return [[node.key for node in level] for level in levels]


def plan_warm_tasks(
    selected: Sequence[str],
    scale: Scale,
    measurement_families: Optional[MeasurementPlan] = None,
) -> Tuple[List[WarmTask], List[WarmTask]]:
    """The artifact warm-up plan for ``selected`` at ``scale``.

    Legacy two-wave view over :func:`plan_warm_levels`: returns
    ``(trace_tasks, heavy_tasks)`` -- the first level (the shared
    workload traces) and the flattened remaining levels.
    """
    levels = plan_warm_levels(selected, scale, measurement_families)
    trace_tasks: List[WarmTask] = []
    heavy_tasks: List[WarmTask] = []
    for depth, level in enumerate(levels):
        for task in level:
            (trace_tasks if depth == 0 else heavy_tasks).append(task)
    return trace_tasks, heavy_tasks


# ----------------------------------------------------------------------
# worker-side entry points (must be module-level for pickling)
# ----------------------------------------------------------------------


def _init_worker(cache_root: str, cache_enabled: bool) -> None:
    artifact_cache.configure(root=cache_root, enabled=cache_enabled)
    # re-read REPRO_FAULTS/REPRO_FAULTS_STATE in this process so forked
    # workers do not reuse the parent's in-memory occurrence counters
    faults.reset_active_faults()


def _task_baseline() -> Tuple[CacheStats, MetricsSnapshot]:
    return (
        artifact_cache.get_cache().stats.snapshot(),
        REGISTRY.snapshot(),
    )


def _task_deltas(
    baseline: Tuple[CacheStats, MetricsSnapshot],
) -> Tuple[CacheStats, MetricsSnapshot]:
    stats_before, metrics_before = baseline
    return (
        artifact_cache.get_cache().stats.since(stats_before),
        REGISTRY.since(metrics_before),
    )


def _warm_worker(task: WarmTask) -> Tuple[CacheStats, MetricsSnapshot, float]:
    baseline = _task_baseline()
    started = time.perf_counter()
    kind, args = task
    if kind == "trace":
        workload, iterations = args
        _trace(workload, iterations)
    elif kind == "trace-columnar":
        workload, iterations = args
        if vector_enabled():
            columnar_run(workload, iterations)
    elif kind == "program-decoded":
        workload, iterations = args
        if pipeline_fast_enabled():
            decoded_run(workload, iterations)
    elif kind == "pipeline":
        (
            workload,
            predictor,
            iterations,
            max_instructions,
            segment_instructions,
            backend,
        ) = args
        _pipeline_result(
            workload,
            predictor,
            iterations,
            max_instructions,
            segment_instructions=segment_instructions,
            backend=backend,
        )
    elif kind == "pipeline-segment":
        (
            workload,
            predictor,
            iterations,
            max_instructions,
            segment_instructions,
            segment,
            backend,
        ) = args
        warm_segment(
            workload,
            predictor,
            iterations,
            max_instructions,
            False,
            segment_instructions,
            segment,
            backend,
        )
    elif kind == "measurement":
        predictor, workload, iterations, families = args
        measurement_cell(predictor, workload, iterations, tuple(families))
    elif kind == "gating":
        gating_cell(*args)
    elif kind == "eager":
        eager_cell(*args)
    elif kind == "inversion":
        inversion_cell(*args)
    else:  # pragma: no cover - plan and worker are defined together
        raise ValueError(f"unknown warm task kind {kind!r}")
    duration = time.perf_counter() - started
    stats, metrics = _task_deltas(baseline)
    return stats, metrics, duration


def _experiment_worker(
    experiment_id: str, scale: Scale, plan: MeasurementPlan = ()
) -> Tuple[ExperimentResult, float, CacheStats, MetricsSnapshot]:
    faults.active_faults().on_experiment(experiment_id)
    activate_measurement_plan(plan)
    try:
        baseline = _task_baseline()
        started = time.perf_counter()
        result = run_experiment(experiment_id, scale)
        duration = time.perf_counter() - started
        stats, metrics = _task_deltas(baseline)
    finally:
        deactivate_measurement_plan()
    return result, duration, stats, metrics


# ----------------------------------------------------------------------
# parent-side supervisor
# ----------------------------------------------------------------------


def default_jobs(journal: Journal = None) -> int:
    """``REPRO_JOBS`` from the environment, else 1 (serial).

    An unparseable value is *not* silently swallowed: the degradation
    to serial execution is announced on stderr and, when a journal is
    active, as a ``warning`` event naming the bad value.
    """
    raw = os.environ.get("REPRO_JOBS", "").strip()
    if raw:
        try:
            return max(1, int(raw))
        except ValueError:
            message = (
                f"repro: ignoring unparseable REPRO_JOBS={raw!r};"
                " running serially (jobs=1)"
            )
            print(message, file=sys.stderr)
            coalesce(journal).emit("warning", message=message, context="REPRO_JOBS")
    return 1


def _merge_worker_state(stats: CacheStats, metrics: MetricsSnapshot) -> None:
    artifact_cache.merge_stats(stats)
    REGISTRY.merge(metrics)


def _run_serially(
    selected: Iterable[str],
    scale: Scale,
    journal: Journal = None,
    measurement_families: Optional[MeasurementPlan] = None,
) -> Dict[str, ExperimentResult]:
    journal = coalesce(journal)
    results: Dict[str, ExperimentResult] = {}
    selected = list(selected)
    if measurement_families is None:
        measurement_families = measurement_plan(
            SPECS[eid] for eid in selected if eid in SPECS
        )
    activate_measurement_plan(measurement_families)
    try:
        for experiment_id in selected:
            if _ABORT.is_set():
                raise RunAborted(results)
            journal.emit(
                "experiment_started", experiment=experiment_id, mode="serial"
            )
            started = time.perf_counter()
            with REGISTRY.timed(f"experiment.{experiment_id}"):
                result = EXPERIMENTS[experiment_id](scale)
            result.duration_s = time.perf_counter() - started
            results[experiment_id] = result
            store_checkpoint(experiment_id, scale, result)
            journal.emit(
                "experiment_finished",
                experiment=experiment_id,
                mode="serial",
                duration_s=result.duration_s,
            )
    finally:
        deactivate_measurement_plan()
    return results


def _format_error(error: BaseException) -> Tuple[str, str]:
    """``(summary, traceback_text)`` for a raised future."""
    summary = f"{type(error).__name__}: {error}"
    trace = "".join(
        traceback.format_exception(type(error), error, error.__traceback__)
    )
    return summary, trace


class _Supervisor:
    """Round-based retrying scheduler for wave 3 (the experiments).

    One *round* submits every still-pending experiment to the pool and
    harvests the futures in selection order, each against its own
    deadline.  Failures are classified, journaled and -- when the
    class is retryable and the budget allows -- carried into the next
    round after a deterministic backoff sleep.  A hung or broken pool
    is recycled between rounds; a pool that cannot be built at all
    flips the supervisor into serial degradation.
    """

    def __init__(
        self,
        selected: Sequence[str],
        scale: Scale,
        jobs: int,
        journal,
        task_timeout: Optional[float],
        retries: int,
        backoff_s: float,
        measurement_families: MeasurementPlan = (),
    ):
        self.selected = list(selected)
        self.scale = scale
        self.jobs = jobs
        self.journal = journal
        self.task_timeout = task_timeout
        self.retries = retries
        self.backoff_s = backoff_s
        self.plan: MeasurementPlan = tuple(measurement_families)
        self.results: Dict[str, ExperimentResult] = {}
        self.attempts: Dict[str, int] = {eid: 0 for eid in self.selected}
        self.pool: Optional[ProcessPoolExecutor] = None
        self.warm_done = False
        self.pool_unavailable = False

    # -- pool lifecycle -------------------------------------------------

    def _ensure_pool(self) -> bool:
        if self.pool is not None:
            return True
        cache = artifact_cache.get_cache()
        try:
            self.pool = ProcessPoolExecutor(
                max_workers=self.jobs,
                initializer=_init_worker,
                initargs=(str(cache.root), cache.enabled),
            )
        except Exception as error:  # noqa: BLE001 - degrade, never die
            self._pool_failed(error)
            return False
        if not self.warm_done:
            self.warm_done = True
            self._run_warm_waves()
        return self.pool is not None

    def _pool_failed(self, error: BaseException) -> None:
        message = (
            f"repro: parallel execution unavailable"
            f" ({type(error).__name__}: {error}); falling back to serial"
        )
        print(message, file=sys.stderr)
        self.journal.emit("warning", message=message, context="pool")
        REGISTRY.count("supervisor.pool_failures")
        self.pool_unavailable = True
        self._recycle_pool(reason="pool_failure", journal_event=False)

    def _recycle_pool(self, reason: str, journal_event: bool = True) -> None:
        pool, self.pool = self.pool, None
        if pool is None:
            return
        if journal_event:
            self.journal.emit("pool_recycled", reason=reason)
            REGISTRY.count("supervisor.pool_recycles")
        # grab worker handles BEFORE shutdown (which nulls _processes),
        # then SIGKILL them: a worker stuck in an uninterruptible state
        # would otherwise keep the executor's manager thread -- and the
        # whole interpreter, via its atexit join -- alive forever.
        # _processes is private but there is no public kill switch.
        processes = list((getattr(pool, "_processes", None) or {}).values())
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except Exception:  # noqa: BLE001 - best effort
            pass
        for process in processes:
            try:
                process.kill()
            except Exception:  # noqa: BLE001 - already dead
                pass

    # -- warm waves -----------------------------------------------------

    def _run_warm_waves(self) -> None:
        """Run the warm-up waves, journaling each task.

        A failing warm task is non-fatal: the artifact simply is not
        pre-cached and the owning experiment computes (or fails and
        falls back) on its own.  A *hung* warm task additionally
        recycles the pool and abandons the rest of the warm-up.
        """
        cache = artifact_cache.get_cache()
        waves = plan_warm_levels(self.selected, self.scale, self.plan)
        if not cache.enabled:
            return
        for wave in waves:
            if not wave or self.pool is None:
                continue
            try:
                futures = [
                    (task, self.pool.submit(_warm_worker, task), time.monotonic())
                    for task in wave
                ]
            except Exception as error:  # noqa: BLE001 - pool refused work
                self._pool_failed(error)
                return
            for task, future, submitted in futures:
                kind, args = task
                try:
                    stats, metrics, duration = future.result(
                        timeout=self._remaining(submitted)
                    )
                except FutureTimeoutError:
                    self.journal.emit(
                        "warm_task",
                        kind=kind,
                        args=list(args),
                        ok=False,
                        error=f"timeout after {self.task_timeout}s",
                    )
                    REGISTRY.count("supervisor.timeouts")
                    self._recycle_pool(reason="hung_warm_task")
                    return
                except Exception as error:  # noqa: BLE001 - worker died
                    summary, __ = _format_error(error)
                    self.journal.emit(
                        "warm_task",
                        kind=kind,
                        args=list(args),
                        ok=False,
                        error=summary,
                    )
                    if isinstance(error, BrokenExecutor):
                        self._recycle_pool(reason="broken_pool_warmup")
                        return
                    continue
                _merge_worker_state(stats, metrics)
                REGISTRY.count("warm.tasks")
                self.journal.emit(
                    "warm_task",
                    kind=kind,
                    args=list(args),
                    ok=True,
                    duration_s=duration,
                )

    # -- experiment rounds ----------------------------------------------

    def _remaining(self, submitted: float) -> Optional[float]:
        if self.task_timeout is None:
            return None
        return max(0.0, submitted + self.task_timeout - time.monotonic())

    def _record_failure(
        self, experiment_id: str, error: BaseException, classification: str
    ) -> None:
        if isinstance(error, FutureTimeoutError):
            summary = (
                f"TimeoutError: worker exceeded the {self.task_timeout}s"
                " task timeout"
            )
            trace = ""
        else:
            summary, trace = _format_error(error)
        print(
            f"repro: experiment {experiment_id} failed"
            f" [{classification}] ({summary})",
            file=sys.stderr,
        )
        self.journal.emit(
            "experiment_failed",
            experiment=experiment_id,
            error=summary,
            traceback=trace,
            classification=classification,
            attempt=self.attempts[experiment_id],
        )
        REGISTRY.count("experiments.failed_parallel")
        REGISTRY.count(f"supervisor.failures.{classification}")
        if classification == "timeout":
            REGISTRY.count("supervisor.timeouts")

    def _attempt_round(self, pending: List[str]) -> List[str]:
        """Submit one attempt for every pending experiment.

        Returns the experiments to retry next round.  Experiments whose
        retry budget is exhausted (or whose failure was fatal) stay
        unresolved and are handled by the serial degradation tail.
        """
        if not self._ensure_pool():
            return pending
        futures: List[Tuple[str, object, float]] = []
        try:
            for experiment_id in pending:
                self.attempts[experiment_id] += 1
                futures.append(
                    (
                        experiment_id,
                        self.pool.submit(
                            _experiment_worker,
                            experiment_id,
                            self.scale,
                            self.plan,
                        ),
                        time.monotonic(),
                    )
                )
                self.journal.emit(
                    "experiment_started",
                    experiment=experiment_id,
                    mode="parallel",
                    attempt=self.attempts[experiment_id],
                )
        except Exception as error:  # noqa: BLE001 - pool refused work
            self._pool_failed(error)
            return [eid for eid in pending if eid not in self.results]

        need_recycle: Optional[str] = None
        failed: List[Tuple[str, str]] = []
        for experiment_id, future, submitted in futures:
            try:
                result, duration, stats, metrics = future.result(
                    timeout=self._remaining(submitted)
                )
            except BaseException as error:  # noqa: BLE001 - classified below
                classification = classify_failure(error)
                if classification == "timeout":
                    future.cancel()
                    need_recycle = "hung_worker"
                elif isinstance(error, BrokenExecutor):
                    need_recycle = need_recycle or "broken_pool"
                self._record_failure(experiment_id, error, classification)
                failed.append((experiment_id, classification))
                if isinstance(error, (KeyboardInterrupt, SystemExit)):
                    raise
                continue
            result.duration_s = duration
            _merge_worker_state(stats, metrics)
            REGISTRY.observe_seconds(f"experiment.{experiment_id}", duration)
            self.results[experiment_id] = result
            store_checkpoint(experiment_id, self.scale, result)
            self.journal.emit(
                "experiment_finished",
                experiment=experiment_id,
                mode="parallel",
                duration_s=duration,
            )
        if need_recycle:
            self._recycle_pool(reason=need_recycle)

        retry: List[str] = []
        for experiment_id, classification in failed:
            if (
                classification != "fatal"
                and self.attempts[experiment_id] <= self.retries
            ):
                delay = self.backoff_s * (2 ** (self.attempts[experiment_id] - 1))
                self.journal.emit(
                    "experiment_retry",
                    experiment=experiment_id,
                    attempt=self.attempts[experiment_id] + 1,
                    classification=classification,
                    delay_s=delay,
                )
                REGISTRY.count("supervisor.retries")
                retry.append(experiment_id)
        return retry

    def run(self) -> Dict[str, ExperimentResult]:
        # a state dir this supervisor creates is released when the
        # battery ends: leaking the exported tempdir (and its claim
        # markers) made a second battery in the same process inherit
        # stale occurrence numbers, so its `times=1` faults never fired
        inherited_state = os.environ.get(faults.STATE_ENV)
        state_dir = faults.ensure_state_dir()
        owns_state = state_dir is not None and not inherited_state
        try:
            pending = list(self.selected)
            round_number = 0
            while pending and not self.pool_unavailable:
                if _ABORT.is_set():
                    # each round already drained its futures, so every
                    # harvested result is checkpointed; stop here
                    self._recycle_pool(reason="aborted", journal_event=False)
                    raise RunAborted(dict(self.results))
                if round_number > 0:
                    # deterministic, jitter-free backoff: identical runs
                    # retry on an identical schedule
                    time.sleep(self.backoff_s * (2 ** (round_number - 1)))
                pending = self._attempt_round(pending)
                round_number += 1
            # a healthy pool shuts down gracefully; hung pools were
            # already recycled inside the round that saw them hang
            pool, self.pool = self.pool, None
            if pool is not None:
                pool.shutdown(wait=True)

            if _ABORT.is_set():
                raise RunAborted(dict(self.results))
            unresolved = [
                eid for eid in self.selected if eid not in self.results
            ]
            if unresolved:
                # graceful degradation: exhausted/fatal/unschedulable
                # experiments run serially in the parent, in selection
                # order, so the battery completes iff a serial run would
                try:
                    self.results.update(
                        _run_serially(
                            unresolved,
                            self.scale,
                            self.journal,
                            measurement_families=self.plan,
                        )
                    )
                except RunAborted as aborted:
                    self.results.update(aborted.results)
                    raise RunAborted(dict(self.results)) from None
            return {eid: self.results[eid] for eid in self.selected}
        finally:
            if owns_state:
                faults.release_state_dir(state_dir)


def run_parallel(
    selected: Sequence[str],
    scale: Scale,
    jobs: int,
    journal: Journal = None,
    task_timeout: Optional[float] = None,
    retries: Optional[int] = None,
    backoff_s: Optional[float] = None,
    measurement_families: Optional[MeasurementPlan] = None,
) -> Dict[str, ExperimentResult]:
    """Run ``selected`` experiments with ``jobs`` supervised workers.

    Results are merged in the order of ``selected`` and carry
    ``duration_s`` stamps.  ``task_timeout``/``retries``/``backoff_s``
    default from ``REPRO_TASK_TIMEOUT``/``REPRO_TASK_RETRIES``/
    ``REPRO_RETRY_BACKOFF``.  ``measurement_families`` is the
    battery-wide estimator-bank plan (defaults to the plan derived from
    ``selected``'s specs); workers install it so every experiment
    shares one bank cell per (workload, predictor) pair.  See the
    module docstring for the failure model; the short version is that a
    failing, hanging or crashing worker costs bounded retries of its
    own experiment, and the battery completes whenever a serial run
    would.
    """
    journal = coalesce(journal)
    jobs = max(1, jobs)
    if measurement_families is None:
        measurement_families = measurement_plan(
            SPECS[eid] for eid in selected if eid in SPECS
        )
    if jobs == 1 or len(selected) == 0:
        return _run_serially(
            selected, scale, journal, measurement_families=measurement_families
        )
    supervisor = _Supervisor(
        selected,
        scale,
        jobs,
        journal,
        task_timeout=(
            task_timeout if task_timeout is not None else task_timeout_from_env()
        ),
        retries=retries if retries is not None else retries_from_env(),
        backoff_s=backoff_s if backoff_s is not None else backoff_from_env(),
        measurement_families=measurement_families,
    )
    return supervisor.run()
