"""Parallel execution of the experiment battery.

The battery is embarrassingly parallel: each experiment replays
independent workload traces through independent predictor/estimator
stacks.  This module fans ``run_all`` out over a
:class:`~concurrent.futures.ProcessPoolExecutor` in three waves:

1. **trace warm-up** -- one task per workload generates/executes the
   program and persists its branch trace in the artifact cache;
2. **heavy-artifact warm-up** -- one task per (workload, predictor)
   cell runs the pipeline simulations and standard-estimator
   measurements the selected experiments will need, again into the
   persistent cache;
3. **experiments** -- one task per experiment, which now mostly reads
   cached artifacts.

Waves 1/2 give intra-experiment (per-workload) parallelism for the
heavy experiments; wave 3 gives inter-experiment parallelism.  Workers
communicate through the content-addressed cache
(:mod:`repro.engine.cache`), so results are deterministic: the merged
output is byte-identical to a serial run, and the merge order is the
caller's selection order regardless of completion order.

If the cache is disabled the warm-up waves are skipped (artifacts
cannot cross process boundaries) and only wave 3 runs.

Failure handling is *per experiment*: a raising future costs only that
experiment, which is re-run serially in the parent after the surviving
parallel results are merged; an ``experiment_failed`` journal event
carries the worker traceback.  Pool-level failures -- the executor
refusing to start, a sandbox that forbids subprocesses -- degrade the
whole remainder to serial execution, so the battery always completes
if a serial run would.

Workers ship back per-task deltas of the artifact-cache statistics and
the metrics registry (:mod:`repro.obs.registry`); the parent folds both
in, so throughput and cache hit-rate accounting is identical to a
serial run.
"""

from __future__ import annotations

import os
import sys
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..engine import cache as artifact_cache
from ..engine.cache import CacheStats
from ..obs.journal import NullJournal, RunJournal, coalesce
from ..obs.registry import REGISTRY, MetricsSnapshot
from .experiments import (
    EXPERIMENTS,
    PREDICTORS,
    ExperimentResult,
    Scale,
    _pipeline_result,
    _trace,
    run_experiment,
    table2_workload,
)
from .speculation import (
    GATE_THRESHOLDS,
    SPECULATION_ESTIMATORS,
    eager_cell,
    gating_cell,
    inversion_cell,
)

Journal = Optional[object]  # RunJournal | NullJournal; kwarg convenience

#: Experiments that run the cycle-level pipeline, and on which predictors.
_PIPELINE_PREDICTORS: Dict[str, Tuple[str, ...]] = {
    "tab1": ("gshare",),
    "fig6": ("gshare",),
    "fig7": ("mcfarling",),
    "fig8": ("gshare",),
    "fig9": ("mcfarling",),
}

#: Experiments built on the standard-estimator measurement grid.
_TABLE2_PREDICTORS: Dict[str, Tuple[str, ...]] = {
    "tab2": PREDICTORS,
    "tab2d": PREDICTORS,
    "tab4": ("gshare", "mcfarling", "sag"),
}

#: Experiments that need no simulation at all.
_NO_TRACE = frozenset({"fig1"})

#: Fault-injection hook for tests/CI: a comma-separated list of
#: experiment ids whose *worker* run raises, exercising the
#: per-experiment serial fallback without touching real code paths.
CRASH_ENV = "REPRO_CRASH_EXPERIMENTS"

WarmTask = Tuple[str, Tuple]


def plan_warm_tasks(
    selected: Sequence[str], scale: Scale
) -> Tuple[List[WarmTask], List[WarmTask]]:
    """The artifact warm-up plan for ``selected`` at ``scale``.

    Returns ``(trace_tasks, heavy_tasks)``; heavy tasks assume the
    traces already exist (wave 1 runs to completion first).
    """
    trace_tasks: Dict[WarmTask, None] = {}
    heavy_tasks: Dict[WarmTask, None] = {}
    needs_trace = any(eid not in _NO_TRACE for eid in selected)
    if needs_trace:
        for workload in scale.workloads:
            trace_tasks[("trace", (workload, scale.iterations))] = None
    for experiment_id in selected:
        for predictor in _PIPELINE_PREDICTORS.get(experiment_id, ()):
            for workload in scale.workloads:
                heavy_tasks[
                    (
                        "pipeline",
                        (
                            workload,
                            predictor,
                            scale.iterations,
                            scale.pipeline_instructions,
                        ),
                    )
                ] = None
        for predictor in _TABLE2_PREDICTORS.get(experiment_id, ()):
            for workload in scale.workloads:
                heavy_tasks[
                    ("table2", (predictor, workload, scale.iterations))
                ] = None
        if experiment_id == "speculation-gating":
            for workload in scale.workloads:
                for estimator in SPECULATION_ESTIMATORS:
                    for threshold in GATE_THRESHOLDS:
                        heavy_tasks[
                            (
                                "gating",
                                (
                                    workload,
                                    estimator,
                                    threshold,
                                    scale.iterations,
                                    scale.pipeline_instructions,
                                ),
                            )
                        ] = None
        elif experiment_id == "speculation-eager":
            for workload in scale.workloads:
                for estimator in SPECULATION_ESTIMATORS:
                    heavy_tasks[
                        (
                            "eager",
                            (
                                workload,
                                estimator,
                                scale.iterations,
                                scale.pipeline_instructions,
                            ),
                        )
                    ] = None
        elif experiment_id == "speculation-inversion":
            for workload in scale.workloads:
                for estimator in SPECULATION_ESTIMATORS:
                    heavy_tasks[
                        ("inversion", (workload, estimator, scale.iterations))
                    ] = None
    return list(trace_tasks), list(heavy_tasks)


# ----------------------------------------------------------------------
# worker-side entry points (must be module-level for pickling)
# ----------------------------------------------------------------------


def _init_worker(cache_root: str, cache_enabled: bool) -> None:
    artifact_cache.configure(root=cache_root, enabled=cache_enabled)


def _task_baseline() -> Tuple[CacheStats, MetricsSnapshot]:
    return (
        artifact_cache.get_cache().stats.snapshot(),
        REGISTRY.snapshot(),
    )


def _task_deltas(
    baseline: Tuple[CacheStats, MetricsSnapshot],
) -> Tuple[CacheStats, MetricsSnapshot]:
    stats_before, metrics_before = baseline
    return (
        artifact_cache.get_cache().stats.since(stats_before),
        REGISTRY.since(metrics_before),
    )


def _warm_worker(task: WarmTask) -> Tuple[CacheStats, MetricsSnapshot, float]:
    baseline = _task_baseline()
    started = time.perf_counter()
    kind, args = task
    if kind == "trace":
        workload, iterations = args
        _trace(workload, iterations)
    elif kind == "pipeline":
        workload, predictor, iterations, max_instructions = args
        _pipeline_result(workload, predictor, iterations, max_instructions)
    elif kind == "table2":
        predictor, workload, iterations = args
        table2_workload(predictor, workload, iterations)
    elif kind == "gating":
        gating_cell(*args)
    elif kind == "eager":
        eager_cell(*args)
    elif kind == "inversion":
        inversion_cell(*args)
    else:  # pragma: no cover - plan and worker are defined together
        raise ValueError(f"unknown warm task kind {kind!r}")
    duration = time.perf_counter() - started
    stats, metrics = _task_deltas(baseline)
    return stats, metrics, duration


def _maybe_injected_crash(experiment_id: str) -> None:
    crashing = os.environ.get(CRASH_ENV, "")
    if experiment_id in {part.strip() for part in crashing.split(",") if part.strip()}:
        raise RuntimeError(
            f"injected worker crash for experiment {experiment_id!r}"
            f" (${CRASH_ENV})"
        )


def _experiment_worker(
    experiment_id: str, scale: Scale
) -> Tuple[ExperimentResult, float, CacheStats, MetricsSnapshot]:
    _maybe_injected_crash(experiment_id)
    baseline = _task_baseline()
    started = time.perf_counter()
    result = run_experiment(experiment_id, scale)
    duration = time.perf_counter() - started
    stats, metrics = _task_deltas(baseline)
    return result, duration, stats, metrics


# ----------------------------------------------------------------------
# parent-side scheduler
# ----------------------------------------------------------------------


def default_jobs(journal: Journal = None) -> int:
    """``REPRO_JOBS`` from the environment, else 1 (serial).

    An unparseable value is *not* silently swallowed: the degradation
    to serial execution is announced on stderr and, when a journal is
    active, as a ``warning`` event naming the bad value.
    """
    raw = os.environ.get("REPRO_JOBS", "").strip()
    if raw:
        try:
            return max(1, int(raw))
        except ValueError:
            message = (
                f"repro: ignoring unparseable REPRO_JOBS={raw!r};"
                " running serially (jobs=1)"
            )
            print(message, file=sys.stderr)
            coalesce(journal).emit("warning", message=message, context="REPRO_JOBS")
    return 1


def _merge_worker_state(stats: CacheStats, metrics: MetricsSnapshot) -> None:
    artifact_cache.merge_stats(stats)
    REGISTRY.merge(metrics)


def _run_serially(
    selected: Iterable[str],
    scale: Scale,
    journal: Journal = None,
) -> Dict[str, ExperimentResult]:
    journal = coalesce(journal)
    results: Dict[str, ExperimentResult] = {}
    for experiment_id in selected:
        journal.emit("experiment_started", experiment=experiment_id, mode="serial")
        started = time.perf_counter()
        with REGISTRY.timed(f"experiment.{experiment_id}"):
            result = EXPERIMENTS[experiment_id](scale)
        result.duration_s = time.perf_counter() - started
        results[experiment_id] = result
        journal.emit(
            "experiment_finished",
            experiment=experiment_id,
            mode="serial",
            duration_s=result.duration_s,
        )
    return results


def _format_error(error: BaseException) -> Tuple[str, str]:
    """``(summary, traceback_text)`` for a raised future."""
    summary = f"{type(error).__name__}: {error}"
    trace = "".join(
        traceback.format_exception(type(error), error, error.__traceback__)
    )
    return summary, trace


def _run_warm_waves(pool, waves, journal: RunJournal) -> None:
    """Run the warm-up waves, journaling each task.

    A failing warm task is non-fatal: the artifact simply is not
    pre-cached and the owning experiment computes (or fails and
    falls back) on its own.
    """
    for wave in waves:
        if not wave:
            continue
        futures = [(task, pool.submit(_warm_worker, task)) for task in wave]
        for task, future in futures:
            kind, args = task
            try:
                stats, metrics, duration = future.result()
            except Exception as error:  # noqa: BLE001 - worker died
                summary, __ = _format_error(error)
                journal.emit(
                    "warm_task",
                    kind=kind,
                    args=list(args),
                    ok=False,
                    error=summary,
                )
                continue
            _merge_worker_state(stats, metrics)
            REGISTRY.count("warm.tasks")
            journal.emit(
                "warm_task",
                kind=kind,
                args=list(args),
                ok=True,
                duration_s=duration,
            )


def run_parallel(
    selected: Sequence[str],
    scale: Scale,
    jobs: int,
    journal: Journal = None,
) -> Dict[str, ExperimentResult]:
    """Run ``selected`` experiments with ``jobs`` worker processes.

    Results are merged in the order of ``selected`` and carry
    ``duration_s`` stamps.  A single failing experiment is re-run
    serially on its own (the surviving parallel results are kept); a
    pool-level failure degrades every not-yet-merged experiment to
    serial execution.
    """
    journal = coalesce(journal)
    jobs = max(1, jobs)
    if jobs == 1 or len(selected) == 0:
        return _run_serially(selected, scale, journal)

    cache = artifact_cache.get_cache()
    trace_tasks, heavy_tasks = plan_warm_tasks(selected, scale)
    if not cache.enabled:
        trace_tasks, heavy_tasks = [], []

    results: Dict[str, ExperimentResult] = {}
    failed: List[str] = []
    try:
        with ProcessPoolExecutor(
            max_workers=jobs,
            initializer=_init_worker,
            initargs=(str(cache.root), cache.enabled),
        ) as pool:
            _run_warm_waves(pool, (trace_tasks, heavy_tasks), journal)
            futures = {}
            for experiment_id in selected:
                futures[experiment_id] = pool.submit(
                    _experiment_worker, experiment_id, scale
                )
                journal.emit(
                    "experiment_started", experiment=experiment_id, mode="parallel"
                )
            for experiment_id, future in futures.items():
                try:
                    result, duration, stats, metrics = future.result()
                except Exception as error:  # noqa: BLE001 - per-future fallback
                    summary, trace = _format_error(error)
                    print(
                        f"repro: experiment {experiment_id} failed in a worker"
                        f" ({summary}); will re-run it serially",
                        file=sys.stderr,
                    )
                    journal.emit(
                        "experiment_failed",
                        experiment=experiment_id,
                        error=summary,
                        traceback=trace,
                    )
                    REGISTRY.count("experiments.failed_parallel")
                    failed.append(experiment_id)
                    continue
                result.duration_s = duration
                _merge_worker_state(stats, metrics)
                REGISTRY.observe_seconds(f"experiment.{experiment_id}", duration)
                results[experiment_id] = result
                journal.emit(
                    "experiment_finished",
                    experiment=experiment_id,
                    mode="parallel",
                    duration_s=duration,
                )
    except Exception as error:  # noqa: BLE001 - pool-level degradation
        message = (
            f"repro: parallel execution failed ({type(error).__name__}: {error});"
            " falling back to serial"
        )
        print(message, file=sys.stderr)
        journal.emit("warning", message=message, context="pool")
        failed = [eid for eid in selected if eid not in results]

    if failed:
        # only the genuinely failed experiments re-run, serially, in
        # selection order; everything else keeps its parallel result
        results.update(
            _run_serially(
                [eid for eid in selected if eid in set(failed)], scale, journal
            )
        )

    return {experiment_id: results[experiment_id] for experiment_id in selected}
