"""Parallel execution of the experiment battery.

The battery is embarrassingly parallel: each experiment replays
independent workload traces through independent predictor/estimator
stacks.  This module fans ``run_all`` out over a
:class:`~concurrent.futures.ProcessPoolExecutor` in three waves:

1. **trace warm-up** -- one task per workload generates/executes the
   program and persists its branch trace in the artifact cache;
2. **heavy-artifact warm-up** -- one task per (workload, predictor)
   cell runs the pipeline simulations and standard-estimator
   measurements the selected experiments will need, again into the
   persistent cache;
3. **experiments** -- one task per experiment, which now mostly reads
   cached artifacts.

Waves 1/2 give intra-experiment (per-workload) parallelism for the
heavy experiments; wave 3 gives inter-experiment parallelism.  Workers
communicate through the content-addressed cache
(:mod:`repro.engine.cache`), so results are deterministic: the merged
output is byte-identical to a serial run, and the merge order is the
caller's selection order regardless of completion order.

If the cache is disabled the warm-up waves are skipped (artifacts
cannot cross process boundaries) and only wave 3 runs.  Any pool
failure -- a worker crash, an unpicklable result, a sandbox that
forbids subprocesses -- degrades gracefully to serial execution in the
parent process.
"""

from __future__ import annotations

import os
import sys
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, Iterable, List, Sequence, Tuple

from ..engine import cache as artifact_cache
from ..engine.cache import CacheStats
from ..engine.counters import SIMULATION_COUNTERS, SimulationCounters
from .experiments import (
    EXPERIMENTS,
    PREDICTORS,
    ExperimentResult,
    Scale,
    _pipeline_result,
    _trace,
    run_experiment,
    table2_workload,
)

#: Experiments that run the cycle-level pipeline, and on which predictors.
_PIPELINE_PREDICTORS: Dict[str, Tuple[str, ...]] = {
    "tab1": ("gshare",),
    "fig6": ("gshare",),
    "fig7": ("mcfarling",),
    "fig8": ("gshare",),
    "fig9": ("mcfarling",),
}

#: Experiments built on the standard-estimator measurement grid.
_TABLE2_PREDICTORS: Dict[str, Tuple[str, ...]] = {
    "tab2": PREDICTORS,
    "tab2d": PREDICTORS,
    "tab4": ("gshare", "mcfarling", "sag"),
}

#: Experiments that need no simulation at all.
_NO_TRACE = frozenset({"fig1"})

WarmTask = Tuple[str, Tuple]


def plan_warm_tasks(
    selected: Sequence[str], scale: Scale
) -> Tuple[List[WarmTask], List[WarmTask]]:
    """The artifact warm-up plan for ``selected`` at ``scale``.

    Returns ``(trace_tasks, heavy_tasks)``; heavy tasks assume the
    traces already exist (wave 1 runs to completion first).
    """
    trace_tasks: Dict[WarmTask, None] = {}
    heavy_tasks: Dict[WarmTask, None] = {}
    needs_trace = any(eid not in _NO_TRACE for eid in selected)
    if needs_trace:
        for workload in scale.workloads:
            trace_tasks[("trace", (workload, scale.iterations))] = None
    for experiment_id in selected:
        for predictor in _PIPELINE_PREDICTORS.get(experiment_id, ()):
            for workload in scale.workloads:
                heavy_tasks[
                    (
                        "pipeline",
                        (
                            workload,
                            predictor,
                            scale.iterations,
                            scale.pipeline_instructions,
                        ),
                    )
                ] = None
        for predictor in _TABLE2_PREDICTORS.get(experiment_id, ()):
            for workload in scale.workloads:
                heavy_tasks[
                    ("table2", (predictor, workload, scale.iterations))
                ] = None
    return list(trace_tasks), list(heavy_tasks)


# ----------------------------------------------------------------------
# worker-side entry points (must be module-level for pickling)
# ----------------------------------------------------------------------


def _init_worker(cache_root: str, cache_enabled: bool) -> None:
    artifact_cache.configure(root=cache_root, enabled=cache_enabled)


def _task_baseline() -> Tuple[CacheStats, SimulationCounters]:
    return (
        artifact_cache.get_cache().stats.snapshot(),
        SIMULATION_COUNTERS.snapshot(),
    )


def _task_deltas(
    baseline: Tuple[CacheStats, SimulationCounters],
) -> Tuple[CacheStats, SimulationCounters]:
    stats_before, counters_before = baseline
    return (
        artifact_cache.get_cache().stats.since(stats_before),
        SIMULATION_COUNTERS.since(counters_before),
    )


def _warm_worker(task: WarmTask) -> Tuple[CacheStats, SimulationCounters]:
    baseline = _task_baseline()
    kind, args = task
    if kind == "trace":
        workload, iterations = args
        _trace(workload, iterations)
    elif kind == "pipeline":
        workload, predictor, iterations, max_instructions = args
        _pipeline_result(workload, predictor, iterations, max_instructions)
    elif kind == "table2":
        predictor, workload, iterations = args
        table2_workload(predictor, workload, iterations)
    else:  # pragma: no cover - plan and worker are defined together
        raise ValueError(f"unknown warm task kind {kind!r}")
    return _task_deltas(baseline)


def _experiment_worker(
    experiment_id: str, scale: Scale
) -> Tuple[ExperimentResult, float, CacheStats, SimulationCounters]:
    baseline = _task_baseline()
    started = time.perf_counter()
    result = run_experiment(experiment_id, scale)
    duration = time.perf_counter() - started
    stats, counters = _task_deltas(baseline)
    return result, duration, stats, counters


# ----------------------------------------------------------------------
# parent-side scheduler
# ----------------------------------------------------------------------


def default_jobs() -> int:
    """``REPRO_JOBS`` from the environment, else 1 (serial)."""
    raw = os.environ.get("REPRO_JOBS", "").strip()
    if raw:
        try:
            return max(1, int(raw))
        except ValueError:
            pass
    return 1


def _merge_worker_state(stats: CacheStats, counters: SimulationCounters) -> None:
    artifact_cache.merge_stats(stats)
    SIMULATION_COUNTERS.merge(counters)


def _run_serially(
    selected: Iterable[str], scale: Scale
) -> Dict[str, ExperimentResult]:
    results: Dict[str, ExperimentResult] = {}
    for experiment_id in selected:
        started = time.perf_counter()
        result = EXPERIMENTS[experiment_id](scale)
        result.duration_s = time.perf_counter() - started
        results[experiment_id] = result
    return results


def run_parallel(
    selected: Sequence[str], scale: Scale, jobs: int
) -> Dict[str, ExperimentResult]:
    """Run ``selected`` experiments with ``jobs`` worker processes.

    Results are merged in the order of ``selected`` and carry
    ``duration_s`` stamps.  Falls back to serial execution (whole
    battery or just the failed experiments) if the pool breaks.
    """
    jobs = max(1, jobs)
    if jobs == 1 or len(selected) == 0:
        return _run_serially(selected, scale)

    cache = artifact_cache.get_cache()
    trace_tasks, heavy_tasks = plan_warm_tasks(selected, scale)
    if not cache.enabled:
        trace_tasks, heavy_tasks = [], []

    results: Dict[str, ExperimentResult] = {}
    pending = list(selected)
    try:
        with ProcessPoolExecutor(
            max_workers=jobs,
            initializer=_init_worker,
            initargs=(str(cache.root), cache.enabled),
        ) as pool:
            for wave in (trace_tasks, heavy_tasks):
                if not wave:
                    continue
                for stats, counters in pool.map(_warm_worker, wave):
                    _merge_worker_state(stats, counters)
            futures = {
                experiment_id: pool.submit(_experiment_worker, experiment_id, scale)
                for experiment_id in pending
            }
            for experiment_id, future in futures.items():
                result, duration, stats, counters = future.result()
                result.duration_s = duration
                _merge_worker_state(stats, counters)
                results[experiment_id] = result
    except Exception as error:  # noqa: BLE001 - any pool failure degrades
        print(
            f"repro: parallel execution failed ({type(error).__name__}: {error});"
            " falling back to serial",
            file=sys.stderr,
        )
        missing = [eid for eid in selected if eid not in results]
        results.update(_run_serially(missing, scale))

    return {experiment_id: results[experiment_id] for experiment_id in selected}
