"""Minimal ASCII chart rendering for figure experiments.

The paper's figures are line charts; the harness regenerates their data
as tables, and this module renders the same data as terminal plots so
`repro plot figN` gives a visual check of the *shape* (clustering
decay, threshold trade-off fronts) without any plotting dependency.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

Series = Sequence[Tuple[float, float]]

MARKERS = "ox+*#@%&"


def _format_axis_value(value: float, as_percent: bool) -> str:
    return f"{value:6.1%}" if as_percent else f"{value:6.2f}"


def line_chart(
    series: Dict[str, Series],
    title: str = "",
    width: int = 60,
    height: int = 18,
    x_label: str = "",
    y_label: str = "",
    y_percent: bool = True,
    y_min: float = None,
    y_max: float = None,
) -> str:
    """Render named (x, y) series on one ASCII grid.

    Each series gets a marker from :data:`MARKERS`; later series
    overwrite earlier ones where they collide (collisions are rendered
    with the later marker, which is fine for shape inspection).
    """
    if not series or all(not points for points in series.values()):
        return f"{title}\n(no data)"
    points_all = [point for points in series.values() for point in points]
    xs = [x for x, __ in points_all]
    ys = [y for __, y in points_all]
    x_low, x_high = min(xs), max(xs)
    y_low = min(ys) if y_min is None else y_min
    y_high = max(ys) if y_max is None else y_max
    if x_high == x_low:
        x_high = x_low + 1.0
    if y_high == y_low:
        y_high = y_low + 1.0

    grid: List[List[str]] = [[" "] * width for __ in range(height)]

    def place(x: float, y: float, marker: str) -> None:
        column = round((x - x_low) / (x_high - x_low) * (width - 1))
        row = round((y - y_low) / (y_high - y_low) * (height - 1))
        row = height - 1 - max(0, min(height - 1, row))
        column = max(0, min(width - 1, column))
        grid[row][column] = marker

    for marker, (label, points) in zip(MARKERS, series.items()):
        for x, y in points:
            place(x, y, marker)

    lines: List[str] = []
    if title:
        lines.append(title)
    if y_label:
        lines.append(f"[y: {y_label}]")
    top = _format_axis_value(y_high, y_percent)
    bottom = _format_axis_value(y_low, y_percent)
    for row_index, row in enumerate(grid):
        if row_index == 0:
            prefix = top
        elif row_index == height - 1:
            prefix = bottom
        else:
            prefix = " " * len(top)
        lines.append(f"{prefix} |{''.join(row)}")
    axis = "-" * width
    lines.append(f"{' ' * len(top)} +{axis}")
    x_left = f"{x_low:g}"
    x_right = f"{x_high:g}"
    padding = width - len(x_left) - len(x_right)
    lines.append(
        f"{' ' * (len(top) + 2)}{x_left}{' ' * max(1, padding)}{x_right}"
        + (f"  [x: {x_label}]" if x_label else "")
    )
    legend = "   ".join(
        f"{marker}={label}" for marker, label in zip(MARKERS, series.keys())
    )
    lines.append(f"{' ' * (len(top) + 2)}{legend}")
    return "\n".join(lines)


def distance_chart(curves: Dict[str, object], title: str) -> str:
    """Chart DistanceCurve objects (misprediction rate vs distance)."""
    series: Dict[str, Series] = {}
    for label, curve in curves.items():
        series[label] = [
            (bucket.distance, bucket.misprediction_rate)
            for bucket in curve.buckets
        ]
    return line_chart(
        series,
        title=title,
        x_label="branches since previous misprediction",
        y_label="misprediction rate",
        y_min=0.0,
    )


def sweep_chart(lines_by_label: Dict[str, object], title: str, metric: str) -> str:
    """Chart SweepLine objects (metric vs threshold)."""
    series: Dict[str, Series] = {}
    for label, sweep in lines_by_label.items():
        series[label] = [
            (point.threshold, getattr(point.quadrant, metric))
            for point in sweep.points
        ]
    return line_chart(
        series,
        title=title,
        x_label="threshold",
        y_label=metric,
        y_min=0.0,
    )


def figure1_chart(curves) -> str:
    """Chart Figure 1's (PVP, PVN) parametric trajectories."""
    series: Dict[str, Series] = {}
    for curve in curves:
        series[curve.label] = [(pvn, pvp) for __, pvp, pvn in curve.points]
    return line_chart(
        series,
        title="Figure 1: PVP (y) vs PVN (x) trajectories",
        x_label="PVN",
        y_label="PVP",
        y_min=0.0,
        y_max=1.0,
    )
