"""Confidence Estimation for Speculation Control -- a full reproduction.

Reproduces Klauser, Grunwald, Manne & Pleszkun, *"Confidence Estimation
for Speculation Control"* (ISCA 1998 / CU-CS-854-98) as a Python
library:

* :mod:`repro.isa` -- a mini RISC ISA with assembler and simulator;
* :mod:`repro.workloads` -- synthetic SPECint95-like benchmark programs;
* :mod:`repro.predictors` -- gshare, McFarling, SAg, bimodal;
* :mod:`repro.confidence` -- JRS, saturating counters, history pattern,
  static, misprediction distance, and boosting estimators;
* :mod:`repro.metrics` -- the SENS/SPEC/PVP/PVN diagnostic-test metrics;
* :mod:`repro.engine` -- trace-driven measurement;
* :mod:`repro.pipeline` -- a speculative 5-stage pipeline simulator;
* :mod:`repro.analysis` -- misprediction clustering and design sweeps;
* :mod:`repro.speculation` -- pipeline gating, SMT fetch control and
  eager-execution applications;
* :mod:`repro.harness` -- one runnable experiment per paper
  table/figure.

Quickstart::

    from repro.engine import workload_run, measure
    from repro.predictors import GsharePredictor
    from repro.confidence import JRSEstimator

    trace = workload_run("gcc").trace
    predictor = GsharePredictor()
    result = measure(trace, predictor, {"jrs": JRSEstimator(threshold=15)})
    print(result.quadrants["jrs"].summary())
"""

from .confidence import (
    BoostedEstimator,
    ConfidenceEstimator,
    JRSEstimator,
    McFarlingVariant,
    MispredictionDistanceEstimator,
    PatternHistoryEstimator,
    SaturatingCountersEstimator,
    StaticEstimator,
)
from .engine import measure, measure_accuracy, trace_branches, workload_run
from .metrics import QuadrantCounts, average_quadrants
from .pipeline import PipelineConfig, PipelineSimulator
from .predictors import (
    BimodalPredictor,
    BranchPredictor,
    GsharePredictor,
    McFarlingPredictor,
    Prediction,
    SAgPredictor,
    make_predictor,
)
from .workloads import SUITE, BranchTrace, generate_program, get_profile

__version__ = "1.0.0"

__all__ = [
    "BoostedEstimator",
    "ConfidenceEstimator",
    "JRSEstimator",
    "McFarlingVariant",
    "MispredictionDistanceEstimator",
    "PatternHistoryEstimator",
    "SaturatingCountersEstimator",
    "StaticEstimator",
    "measure",
    "measure_accuracy",
    "trace_branches",
    "workload_run",
    "QuadrantCounts",
    "average_quadrants",
    "PipelineConfig",
    "PipelineSimulator",
    "BimodalPredictor",
    "BranchPredictor",
    "GsharePredictor",
    "McFarlingPredictor",
    "Prediction",
    "SAgPredictor",
    "make_predictor",
    "SUITE",
    "BranchTrace",
    "generate_program",
    "get_profile",
    "__version__",
]
