"""Additional two-level predictors from the paper's context.

The paper's comparison uses gshare, McFarling and SAg, but its
discussion leans on the wider Yeh & Patt taxonomy:

* **GAg** -- one global history register indexing the PHT directly
  (no PC bits at all).  The simplest global two-level scheme; included
  because gshare's advantage over it (PC XOR folds in site identity)
  is part of why estimator/predictor *structural match* matters.
* **gselect** -- concatenate low PC bits with global history bits to
  form the PHT index (McFarling's paper compares gshare against this).
* **PAs** -- the *tagged* per-address scheme Lick et al. built their
  pattern-history confidence estimator on.  Unlike the tagless SAg, a
  BTB-style tag array means a branch only sees its own history; on a
  tag miss the entry is (re)allocated, evicting a colliding branch.

All three follow the same resolve-time-update discipline as SAg
(per-branch history cannot be speculatively repaired cheaply; GAg and
gselect use speculative global history with snapshot repair, like
gshare).
"""

from __future__ import annotations

from typing import List, Optional

from .base import BranchPredictor, Prediction
from .counters import CounterTable
from .history import GlobalHistory


class GAgPredictor(BranchPredictor):
    """Global history -> shared PHT, no PC bits in the index."""

    name = "gag"

    def __init__(
        self,
        history_bits: int = 12,
        counter_bits: int = 2,
        speculative_history: bool = True,
    ):
        self.pht = CounterTable(1 << history_bits, bits=counter_bits)
        self.history = GlobalHistory(history_bits)
        self.counter_bits = counter_bits
        self.speculative_history = speculative_history

    def predict(self, pc: int) -> Prediction:
        history_value = self.history.value
        counter = self.pht.values[history_value]
        taken = counter >= self.pht.midpoint
        prediction = Prediction(
            taken=taken,
            index=history_value,
            history=history_value,
            counters=(counter,),
            snapshot=history_value,
        )
        if self.speculative_history:
            self.history.push(taken)
        return prediction

    def resolve(self, pc: int, taken: bool, prediction: Prediction) -> None:
        self.pht.update(prediction.index, taken)
        if self.speculative_history:
            if taken != prediction.taken:
                self.history.set(
                    GlobalHistory.extend(prediction.snapshot, taken, self.history.mask)
                )
        else:
            self.history.push(taken)

    def reset(self) -> None:
        self.pht = CounterTable(self.pht.size, bits=self.pht.bits)
        self.history = GlobalHistory(self.history.bits)


class GselectPredictor(BranchPredictor):
    """Concatenated PC/history index (McFarling's gselect)."""

    name = "gselect"

    def __init__(
        self,
        table_size: int = 4096,
        history_bits: int = 6,
        counter_bits: int = 2,
        speculative_history: bool = True,
    ):
        self.table = CounterTable(table_size, bits=counter_bits)
        index_bits = table_size.bit_length() - 1
        if history_bits >= index_bits:
            raise ValueError(
                f"history_bits={history_bits} leaves no PC bits in a "
                f"{table_size}-entry table"
            )
        self.history = GlobalHistory(history_bits)
        self.pc_bits = index_bits - history_bits
        self.counter_bits = counter_bits
        self.speculative_history = speculative_history

    def _index(self, pc: int, history_value: int) -> int:
        pc_part = pc & ((1 << self.pc_bits) - 1)
        return ((history_value << self.pc_bits) | pc_part) & self.table.index_mask

    def predict(self, pc: int) -> Prediction:
        history_value = self.history.value
        index = self._index(pc, history_value)
        counter = self.table.values[index]
        taken = counter >= self.table.midpoint
        prediction = Prediction(
            taken=taken,
            index=index,
            history=history_value,
            counters=(counter,),
            snapshot=history_value,
        )
        if self.speculative_history:
            self.history.push(taken)
        return prediction

    def resolve(self, pc: int, taken: bool, prediction: Prediction) -> None:
        self.table.update(prediction.index, taken)
        if self.speculative_history:
            if taken != prediction.taken:
                self.history.set(
                    GlobalHistory.extend(prediction.snapshot, taken, self.history.mask)
                )
        else:
            self.history.push(taken)

    def reset(self) -> None:
        self.table = CounterTable(self.table.size, bits=self.table.bits)
        self.history = GlobalHistory(self.history.bits)


class PAsPredictor(BranchPredictor):
    """Tagged per-address two-level predictor (Lick et al.'s substrate).

    A direct-mapped, tagged branch history table: each entry holds
    (tag, local history).  On a tag miss the entry is reallocated with
    an empty history -- so unlike SAg, histories never alias, they get
    *evicted*.  The PHT is shared, indexed by the local history (an
    "s"-style second level keyed purely on the pattern).
    """

    name = "pas"

    def __init__(
        self,
        history_entries: int = 1024,
        history_bits: int = 10,
        pht_size: int = 4096,
        counter_bits: int = 2,
    ):
        if history_entries < 1 or history_entries & (history_entries - 1):
            raise ValueError("history_entries must be a power of two")
        self.history_entries = history_entries
        self.history_bits = history_bits
        self.index_mask = history_entries - 1
        self.history_mask = (1 << history_bits) - 1
        self.tags: List[Optional[int]] = [None] * history_entries
        self.histories: List[int] = [0] * history_entries
        self.pht = CounterTable(pht_size, bits=counter_bits)
        self.counter_bits = counter_bits
        self.evictions = 0

    def _lookup(self, pc: int) -> int:
        """Local history of ``pc`` (0 if the entry belongs to another)."""
        index = pc & self.index_mask
        if self.tags[index] == pc:
            return self.histories[index]
        return 0

    def predict(self, pc: int) -> Prediction:
        history_value = self._lookup(pc)
        index = history_value & self.pht.index_mask
        counter = self.pht.values[index]
        return Prediction(
            taken=counter >= self.pht.midpoint,
            index=index,
            history=history_value,
            counters=(counter,),
            snapshot=None,  # non-speculative local histories
        )

    def resolve(self, pc: int, taken: bool, prediction: Prediction) -> None:
        self.pht.update(prediction.index, taken)
        entry = pc & self.index_mask
        if self.tags[entry] != pc:
            if self.tags[entry] is not None:
                self.evictions += 1
            self.tags[entry] = pc
            self.histories[entry] = 0
        self.histories[entry] = (
            (self.histories[entry] << 1) | (1 if taken else 0)
        ) & self.history_mask

    def reset(self) -> None:
        self.tags = [None] * self.history_entries
        self.histories = [0] * self.history_entries
        self.pht = CounterTable(self.pht.size, bits=self.pht.bits)
        self.evictions = 0
