"""McFarling combining predictor (gshare + bimodal + meta chooser)."""

from __future__ import annotations

from .base import BranchPredictor, Prediction
from .counters import CounterTable
from .history import GlobalHistory


class McFarlingPredictor(BranchPredictor):
    """Two-component combining predictor (McFarling 1993).

    A gshare component and a PC-indexed bimodal component are both
    consulted on every branch; a PC-indexed 2-bit meta table selects
    which direction to follow.  At resolution both components train on
    the outcome, and the meta counter is nudged toward whichever
    component was right *when they disagreed* -- otherwise it is left
    alone, exactly the paper's description in §3.3.1.

    ``Prediction.counters`` carries ``(gshare, bimodal, meta)`` raw
    counter values so the saturating-counters confidence estimator can
    implement its Both-Strong / Either-Strong variants, and
    ``Prediction.index`` carries the gshare component index.
    """

    name = "mcfarling"

    def __init__(
        self,
        table_size: int = 4096,
        history_bits: int = None,
        counter_bits: int = 2,
        speculative_history: bool = True,
    ):
        self.gshare_table = CounterTable(table_size, bits=counter_bits)
        self.bimodal_table = CounterTable(table_size, bits=counter_bits)
        self.meta_table = CounterTable(table_size, bits=counter_bits)
        if history_bits is None:
            history_bits = max(1, table_size.bit_length() - 1)
        self.history = GlobalHistory(history_bits)
        self.counter_bits = counter_bits
        self.speculative_history = speculative_history

    def predict(self, pc: int) -> Prediction:
        history_value = self.history.value
        gshare_index = (pc ^ history_value) & self.gshare_table.index_mask
        pc_index = pc & self.bimodal_table.index_mask
        gshare_counter = self.gshare_table.values[gshare_index]
        bimodal_counter = self.bimodal_table.values[pc_index]
        meta_counter = self.meta_table.values[pc_index]
        use_gshare = meta_counter >= self.meta_table.midpoint
        if use_gshare:
            taken = gshare_counter >= self.gshare_table.midpoint
        else:
            taken = bimodal_counter >= self.bimodal_table.midpoint
        prediction = Prediction(
            taken=taken,
            index=gshare_index,
            history=history_value,
            counters=(gshare_counter, bimodal_counter, meta_counter),
            snapshot=history_value,
        )
        if self.speculative_history:
            self.history.push(taken)
        return prediction

    def resolve(self, pc: int, taken: bool, prediction: Prediction) -> None:
        gshare_counter, bimodal_counter, __ = prediction.counters
        gshare_was_right = (
            gshare_counter >= self.gshare_table.midpoint
        ) == taken
        bimodal_was_right = (
            bimodal_counter >= self.bimodal_table.midpoint
        ) == taken
        pc_index = pc & self.bimodal_table.index_mask
        if gshare_was_right != bimodal_was_right:
            # re-enforce the component that got this branch right
            self.meta_table.update(pc_index, gshare_was_right)
        self.gshare_table.update(prediction.index, taken)
        self.bimodal_table.update(pc_index, taken)
        if self.speculative_history:
            if taken != prediction.taken:
                self.history.set(
                    GlobalHistory.extend(prediction.snapshot, taken, self.history.mask)
                )
        else:
            self.history.push(taken)

    def predict_compact(self, pc: int):
        # allocation-free twin of predict(): component directions are
        # pre-computed into the token so resolve_compact() can train
        # the meta table without the raw counter values
        history = self.history
        history_value = history.value
        gshare_table = self.gshare_table
        bimodal_table = self.bimodal_table
        gshare_index = (pc ^ history_value) & gshare_table.index_mask
        pc_index = pc & bimodal_table.index_mask
        gshare_taken = (
            gshare_table.values[gshare_index] >= gshare_table.midpoint
        )
        bimodal_taken = (
            bimodal_table.values[pc_index] >= bimodal_table.midpoint
        )
        meta_table = self.meta_table
        if meta_table.values[pc_index] >= meta_table.midpoint:
            taken = gshare_taken
        else:
            taken = bimodal_taken
        if self.speculative_history:
            history.value = (
                (history_value << 1) | (1 if taken else 0)
            ) & history.mask
        return taken, (
            taken,
            gshare_index,
            gshare_taken,
            bimodal_taken,
            history_value,
        )

    def resolve_compact(self, pc: int, taken: bool, token) -> None:
        predicted, gshare_index, gshare_taken, bimodal_taken, snapshot = token
        gshare_was_right = gshare_taken == taken
        bimodal_was_right = bimodal_taken == taken
        pc_index = pc & self.bimodal_table.index_mask
        if gshare_was_right != bimodal_was_right:
            # saturating nudge toward the component that was right
            meta_values = self.meta_table.values
            value = meta_values[pc_index]
            if gshare_was_right:
                if value < self.meta_table.max_value:
                    meta_values[pc_index] = value + 1
            elif value > 0:
                meta_values[pc_index] = value - 1
        gshare_values = self.gshare_table.values
        bimodal_values = self.bimodal_table.values
        if taken:
            value = gshare_values[gshare_index]
            if value < self.gshare_table.max_value:
                gshare_values[gshare_index] = value + 1
            value = bimodal_values[pc_index]
            if value < self.bimodal_table.max_value:
                bimodal_values[pc_index] = value + 1
        else:
            value = gshare_values[gshare_index]
            if value > 0:
                gshare_values[gshare_index] = value - 1
            value = bimodal_values[pc_index]
            if value > 0:
                bimodal_values[pc_index] = value - 1
        history = self.history
        if self.speculative_history:
            if taken != predicted:
                history.value = (
                    (snapshot << 1) | (1 if taken else 0)
                ) & history.mask
        else:
            history.value = (
                (history.value << 1) | (1 if taken else 0)
            ) & history.mask

    def reset(self) -> None:
        size = self.gshare_table.size
        bits = self.gshare_table.bits
        self.gshare_table = CounterTable(size, bits=bits)
        self.bimodal_table = CounterTable(size, bits=bits)
        self.meta_table = CounterTable(size, bits=bits)
        self.history = GlobalHistory(self.history.bits)
