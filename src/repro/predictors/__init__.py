"""Branch-prediction substrate: counters, histories and the three
predictors the paper evaluates (gshare, McFarling, SAg) plus bimodal."""

from typing import Callable, Dict

from .base import BranchPredictor, Prediction
from .bimodal import BimodalPredictor
from .counters import (
    CounterTable,
    SaturatingCounter,
    counter_is_strong,
    counter_predicts_taken,
)
from .gshare import GsharePredictor
from .history import GlobalHistory, LocalHistoryTable
from .mcfarling import McFarlingPredictor
from .sag import SAgPredictor
from .twolevel import GAgPredictor, GselectPredictor, PAsPredictor

#: Factories for the paper's three predictor configurations plus the
#: wider two-level family its discussion references.
PREDICTOR_FACTORIES: Dict[str, Callable[[], BranchPredictor]] = {
    "gshare": GsharePredictor,
    "mcfarling": McFarlingPredictor,
    "sag": SAgPredictor,
    "bimodal": BimodalPredictor,
    "gag": GAgPredictor,
    "gselect": GselectPredictor,
    "pas": PAsPredictor,
}


def make_predictor(name: str, **kwargs) -> BranchPredictor:
    """Instantiate a predictor by name with paper-default geometry."""
    try:
        factory = PREDICTOR_FACTORIES[name]
    except KeyError:
        raise KeyError(
            f"unknown predictor {name!r}; "
            f"available: {', '.join(sorted(PREDICTOR_FACTORIES))}"
        ) from None
    return factory(**kwargs)


__all__ = [
    "BranchPredictor",
    "Prediction",
    "BimodalPredictor",
    "CounterTable",
    "SaturatingCounter",
    "counter_is_strong",
    "counter_predicts_taken",
    "GsharePredictor",
    "GlobalHistory",
    "LocalHistoryTable",
    "McFarlingPredictor",
    "SAgPredictor",
    "GAgPredictor",
    "GselectPredictor",
    "PAsPredictor",
    "PREDICTOR_FACTORIES",
    "make_predictor",
]
