"""Branch-predictor interface shared by the trace engine and pipeline.

The protocol mirrors how hardware interleaves prediction and update:

* :meth:`BranchPredictor.predict` is called at fetch.  Predictors with
  speculative history push the *predicted* direction immediately and
  record enough state in the returned :class:`Prediction` to repair
  themselves later.
* :meth:`BranchPredictor.resolve` is called once, in program order,
  when the branch resolves (trace engine: immediately after predict;
  pipeline: ``resolve_latency`` cycles later).  Squashed wrong-path
  branches are *never* resolved, so their table updates never happen --
  exactly the commit-time-update discipline of sim-outorder.
* On a misprediction, ``resolve`` restores the speculative history from
  the prediction's snapshot before folding in the actual outcome, which
  also wipes any wrong-path bits younger branches pushed.

Confidence estimators consume the :class:`Prediction` record: it
carries the consulted counter values and the history used, the two
pieces of "existing processor state" the paper's inexpensive
estimators tap.
"""

from __future__ import annotations

import abc
from typing import Optional, Tuple


class Prediction:
    """Everything a single branch prediction exposes to the outside.

    Attributes
    ----------
    taken:
        Predicted direction.
    index:
        Table index the direction counter was read from (predictor
        specific; McFarling stores the gshare component's index).
    history:
        History register value *used for this prediction* (global for
        gshare/McFarling, the per-branch local history for SAg).
    counters:
        Raw values of every direction counter consulted, in predictor
        specific order.  The saturating-counters confidence estimator
        reads these.
    snapshot:
        Pre-branch speculative-history value, used for repair; ``None``
        for non-speculative predictors.
    app_state:
        Free slot for wrapper predictors (e.g. the inversion wrapper)
        to carry per-prediction bookkeeping; unused by the core.
    """

    __slots__ = ("taken", "index", "history", "counters", "snapshot", "app_state")

    def __init__(
        self,
        taken: bool,
        index: int,
        history: int,
        counters: Tuple[int, ...],
        snapshot: Optional[int] = None,
    ):
        self.taken = taken
        self.index = index
        self.history = history
        self.counters = counters
        self.snapshot = snapshot
        self.app_state = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Prediction(taken={self.taken}, index={self.index}, "
            f"history={self.history}, counters={self.counters})"
        )


class BranchPredictor(abc.ABC):
    """Abstract conditional-branch direction predictor."""

    #: Short name used in tables and experiment output.
    name: str = "predictor"
    #: Bits per direction counter (estimators need this to test "strong").
    counter_bits: int = 2

    @abc.abstractmethod
    def predict(self, pc: int) -> Prediction:
        """Predict the branch at ``pc`` (called at fetch)."""

    @abc.abstractmethod
    def resolve(self, pc: int, taken: bool, prediction: Prediction) -> None:
        """Learn the actual outcome (called in order at resolution)."""

    def predict_compact(self, pc: int) -> Tuple[bool, object]:
        """Allocation-light predict: ``(taken, token)``.

        The pipeline's fused fast loop uses this instead of
        :meth:`predict` when no confidence estimator needs the full
        :class:`Prediction` record.  The opaque ``token`` must be
        passed back to :meth:`resolve_compact`; predictor state must
        evolve exactly as under :meth:`predict` (the fast/slow
        byte-identity tests compare the two end to end).  The default
        simply wraps :meth:`predict`, so subclasses only override this
        as an optimisation.
        """
        prediction = self.predict(pc)
        return prediction.taken, prediction

    def resolve_compact(self, pc: int, taken: bool, token: object) -> None:
        """Resolve a branch predicted via :meth:`predict_compact`."""
        self.resolve(pc, taken, token)

    def reset(self) -> None:
        """Restore power-on state (re-creating the object also works)."""
        raise NotImplementedError
