"""SAg two-level predictor: per-branch histories, shared counter table."""

from __future__ import annotations

from .base import BranchPredictor, Prediction
from .counters import CounterTable
from .history import LocalHistoryTable


class SAgPredictor(BranchPredictor):
    """Yeh & Patt's SAg (set/per-address history, global PHT).

    The paper's third configuration: 2048 tagless branch-history
    entries, 13-bit histories, 8192-entry shared PHT.  Histories are
    updated **non-speculatively** -- only at branch resolution --
    because rolling back speculative per-entry updates would require
    multi-cycle repair or checkpointing the whole BHT (§3.1).

    ``Prediction.history`` carries the branch's *local* pattern, which
    is what the Lick et al. pattern-history confidence estimator keys
    on (and why that estimator shines here and nowhere else).
    """

    name = "sag"

    def __init__(
        self,
        history_entries: int = 2048,
        history_bits: int = 13,
        pht_size: int = 8192,
        counter_bits: int = 2,
    ):
        self.bht = LocalHistoryTable(history_entries, history_bits)
        self.pht = CounterTable(pht_size, bits=counter_bits)
        self.counter_bits = counter_bits
        self.history_bits = history_bits

    def predict(self, pc: int) -> Prediction:
        history_value = self.bht.read(pc)
        index = history_value & self.pht.index_mask
        counter = self.pht.values[index]
        return Prediction(
            taken=counter >= self.pht.midpoint,
            index=index,
            history=history_value,
            counters=(counter,),
            snapshot=None,  # nothing speculative to repair
        )

    def resolve(self, pc: int, taken: bool, prediction: Prediction) -> None:
        self.pht.update(prediction.index, taken)
        self.bht.push(pc, taken)

    def reset(self) -> None:
        self.bht = LocalHistoryTable(self.bht.entries, self.bht.bits)
        self.pht = CounterTable(self.pht.size, bits=self.pht.bits)
