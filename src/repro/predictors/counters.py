"""Saturating counters and counter tables.

n-bit saturating up/down counters are the workhorse of both branch
prediction (2-bit direction counters) and the JRS confidence estimator
(4-bit miss distance counters).  :class:`SaturatingCounter` is the
single-counter reference implementation used by tests and docs;
:class:`CounterTable` is the array form the predictors use on their hot
path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List


@dataclass
class SaturatingCounter:
    """One n-bit saturating counter.

    For 2-bit direction counters the usual interpretation applies:
    values in the upper half predict taken, the extreme values are the
    "strong" states used by the saturating-counters confidence
    estimator (Smith 1981).
    """

    bits: int = 2
    value: int = field(default=0)

    def __post_init__(self) -> None:
        if self.bits < 1:
            raise ValueError("counter needs at least 1 bit")
        if not 0 <= self.value <= self.max_value:
            raise ValueError(f"initial value {self.value} outside range")

    @property
    def max_value(self) -> int:
        return (1 << self.bits) - 1

    @property
    def midpoint(self) -> int:
        return 1 << (self.bits - 1)

    def increment(self) -> None:
        if self.value < self.max_value:
            self.value += 1

    def decrement(self) -> None:
        if self.value > 0:
            self.value -= 1

    def reset(self) -> None:
        self.value = 0

    def update(self, taken: bool) -> None:
        """Move toward taken (up) or not-taken (down)."""
        if taken:
            self.increment()
        else:
            self.decrement()

    @property
    def predict_taken(self) -> bool:
        return self.value >= self.midpoint

    @property
    def is_strong(self) -> bool:
        """True in the saturated (strongly biased) states."""
        return self.value == 0 or self.value == self.max_value


class CounterTable:
    """A table of n-bit saturating counters stored as a flat int list.

    The list is exposed (read-only by convention) as ``values`` because
    predictors and estimators touch it on every branch; method-call
    overhead there is the difference between a usable and an unusable
    pure-Python simulator.
    """

    def __init__(self, size: int, bits: int = 2, initial: int = None):
        if size < 1 or size & (size - 1):
            raise ValueError(f"table size {size} must be a power of two")
        if bits < 1:
            raise ValueError("counter needs at least 1 bit")
        self.size = size
        self.bits = bits
        self.max_value = (1 << bits) - 1
        self.midpoint = 1 << (bits - 1)
        self.index_mask = size - 1
        if initial is None:
            initial = self.midpoint - 1  # weakly not-taken
        if not 0 <= initial <= self.max_value:
            raise ValueError(f"initial value {initial} outside range")
        self.values: List[int] = [initial] * size

    def read(self, index: int) -> int:
        return self.values[index & self.index_mask]

    def predict_taken(self, index: int) -> bool:
        return self.values[index & self.index_mask] >= self.midpoint

    def is_strong(self, index: int) -> bool:
        value = self.values[index & self.index_mask]
        return value == 0 or value == self.max_value

    def update(self, index: int, taken: bool) -> None:
        """Saturating move toward the observed direction."""
        index &= self.index_mask
        value = self.values[index]
        if taken:
            if value < self.max_value:
                self.values[index] = value + 1
        elif value > 0:
            self.values[index] = value - 1

    def increment(self, index: int) -> None:
        index &= self.index_mask
        if self.values[index] < self.max_value:
            self.values[index] += 1

    def reset(self, index: int) -> None:
        self.values[index & self.index_mask] = 0

    def __len__(self) -> int:
        return self.size


def counter_is_strong(value: int, bits: int) -> bool:
    """Strong-state test on a raw counter value (estimator helper)."""
    return value == 0 or value == (1 << bits) - 1


def counter_predicts_taken(value: int, bits: int) -> bool:
    """Direction of a raw counter value (estimator helper)."""
    return value >= (1 << (bits - 1))
