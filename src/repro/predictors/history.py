"""Branch history registers: global (speculative) and per-branch tables.

The paper's gshare and McFarling predictors update their global history
register *speculatively* -- the predicted direction is shifted in at
prediction time -- and repair it when a misprediction is detected.  The
repair needs the pre-branch history value, which every
:class:`~repro.predictors.base.Prediction` snapshots, so recovery is a
single assignment regardless of how many wrong-path branches polluted
the register (this is exactly why speculative *global* history is cheap
to implement while speculative *per-branch* history, as a SAg/PAs
predictor would need, is not -- the point the paper makes in §3.1).
"""

from __future__ import annotations

from typing import List


class GlobalHistory:
    """An n-bit global branch history shift register."""

    def __init__(self, bits: int):
        if bits < 1:
            raise ValueError("history needs at least 1 bit")
        self.bits = bits
        self.mask = (1 << bits) - 1
        self.value = 0

    def push(self, taken: bool) -> None:
        """Shift a direction bit in (1 = taken)."""
        self.value = ((self.value << 1) | (1 if taken else 0)) & self.mask

    def set(self, value: int) -> None:
        """Overwrite the register (misprediction repair)."""
        self.value = value & self.mask

    @staticmethod
    def extend(value: int, taken: bool, mask: int) -> int:
        """Pure form of :meth:`push` used for repair arithmetic."""
        return ((value << 1) | (1 if taken else 0)) & mask

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"GlobalHistory(bits={self.bits}, value={self.value:0{self.bits}b})"


class LocalHistoryTable:
    """Per-branch history registers (the BHT of a SAg predictor).

    Tagless: branches whose PCs collide in the table alias each other's
    histories, as the paper notes for SAg vs. PAs.  Updated
    non-speculatively (at branch resolution) because rolling back
    per-entry speculative updates would need multi-cycle repair or BHT
    checkpointing (§3.1).
    """

    def __init__(self, entries: int, bits: int):
        if entries < 1 or entries & (entries - 1):
            raise ValueError(f"entries {entries} must be a power of two")
        if bits < 1:
            raise ValueError("history needs at least 1 bit")
        self.entries = entries
        self.bits = bits
        self.index_mask = entries - 1
        self.history_mask = (1 << bits) - 1
        self.values: List[int] = [0] * entries

    def read(self, pc: int) -> int:
        return self.values[pc & self.index_mask]

    def push(self, pc: int, taken: bool) -> None:
        index = pc & self.index_mask
        self.values[index] = (
            (self.values[index] << 1) | (1 if taken else 0)
        ) & self.history_mask
