"""Gshare predictor with speculative global-history update."""

from __future__ import annotations

from .base import BranchPredictor, Prediction
from .counters import CounterTable
from .history import GlobalHistory


class GsharePredictor(BranchPredictor):
    """McFarling's gshare: PHT indexed by PC XOR global history.

    The paper's first configuration: 4096 two-bit counters, with the
    history register updated *speculatively* at prediction time and
    repaired from the prediction's snapshot when a misprediction
    resolves (§3.1).
    """

    name = "gshare"

    def __init__(
        self,
        table_size: int = 4096,
        history_bits: int = None,
        counter_bits: int = 2,
        speculative_history: bool = True,
    ):
        self.table = CounterTable(table_size, bits=counter_bits)
        if history_bits is None:
            history_bits = max(1, table_size.bit_length() - 1)
        self.history = GlobalHistory(history_bits)
        self.counter_bits = counter_bits
        self.speculative_history = speculative_history

    def predict(self, pc: int) -> Prediction:
        history_value = self.history.value
        index = (pc ^ history_value) & self.table.index_mask
        counter = self.table.values[index]
        taken = counter >= self.table.midpoint
        prediction = Prediction(
            taken=taken,
            index=index,
            history=history_value,
            counters=(counter,),
            snapshot=history_value,
        )
        if self.speculative_history:
            self.history.push(taken)
        return prediction

    def resolve(self, pc: int, taken: bool, prediction: Prediction) -> None:
        self.table.update(prediction.index, taken)
        if self.speculative_history:
            if taken != prediction.taken:
                # squash repair: rewind past every speculative bit pushed
                # since this branch predicted, then insert the truth
                self.history.set(
                    GlobalHistory.extend(prediction.snapshot, taken, self.history.mask)
                )
        else:
            self.history.push(taken)

    def predict_compact(self, pc: int):
        # allocation-free twin of predict(): same state evolution,
        # tuple token instead of a Prediction record
        history = self.history
        history_value = history.value
        table = self.table
        index = (pc ^ history_value) & table.index_mask
        taken = table.values[index] >= table.midpoint
        if self.speculative_history:
            history.value = (
                (history_value << 1) | (1 if taken else 0)
            ) & history.mask
        return taken, (taken, index, history_value)

    def resolve_compact(self, pc: int, taken: bool, token) -> None:
        predicted, index, snapshot = token
        table = self.table
        value = table.values[index]
        if taken:
            if value < table.max_value:
                table.values[index] = value + 1
        elif value > 0:
            table.values[index] = value - 1
        history = self.history
        if self.speculative_history:
            if taken != predicted:
                # squash repair, as in resolve()
                history.value = (
                    (snapshot << 1) | (1 if taken else 0)
                ) & history.mask
        else:
            history.value = (
                (history.value << 1) | (1 if taken else 0)
            ) & history.mask

    def reset(self) -> None:
        self.table = CounterTable(self.table.size, bits=self.table.bits)
        self.history = GlobalHistory(self.history.bits)
