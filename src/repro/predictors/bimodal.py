"""Bimodal (Smith) predictor: a PC-indexed table of 2-bit counters."""

from __future__ import annotations

from .base import BranchPredictor, Prediction
from .counters import CounterTable


class BimodalPredictor(BranchPredictor):
    """The classic per-PC saturating-counter predictor (Smith 1981).

    Also serves as the PC-indexed component of the McFarling combining
    predictor.  No history is kept, so there is nothing to repair on a
    misprediction.
    """

    name = "bimodal"

    def __init__(self, table_size: int = 4096, counter_bits: int = 2):
        self.table = CounterTable(table_size, bits=counter_bits)
        self.counter_bits = counter_bits

    def predict(self, pc: int) -> Prediction:
        index = pc & self.table.index_mask
        counter = self.table.values[index]
        return Prediction(
            taken=counter >= self.table.midpoint,
            index=index,
            history=0,
            counters=(counter,),
        )

    def resolve(self, pc: int, taken: bool, prediction: Prediction) -> None:
        self.table.update(prediction.index, taken)

    def reset(self) -> None:
        self.table = CounterTable(self.table.size, bits=self.table.bits)
