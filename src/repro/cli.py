"""Command-line front end.

Usage examples::

    repro list                         # experiments and workloads
    repro run tab2                     # one experiment, full scale
    repro run --scale smoke --jobs 4   # whole battery, small + parallel
    repro run --journal run.jsonl      # + structured JSONL run journal
    repro run --resume run.jsonl       # continue a killed/crashed run
    repro run --jobs 4 --task-timeout 300 --retries 3   # supervised sweep
    repro cache verify                 # detect corrupt cache entries
    repro bench --json bench.json      # machine-readable battery benchmark
    repro list --markdown              # the README battery table
    repro run-all --out report.txt     # the whole battery
    repro speculate --scale smoke      # the speculation-control battery
    repro profile tab2 --scale smoke   # cProfile one experiment
    repro profile fig6 --hot-branches  # + top mispredicting sites
    repro journal run.jsonl            # validate/summarise a journal
    repro cache info                   # artifact-cache contents
    repro workload gcc --iterations 50 # inspect a synthetic workload
    repro trace gcc out.rbt.gz         # dump a branch trace file
    repro serve --port 7950 --workers 4   # streaming estimator server
    repro load --port 7950 --clients 8 --verify  # replay traces at it
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import json
import os
import signal
import sys
import time
from typing import List, Optional

from .engine import (
    BANK_PASSES_METRIC,
    BRANCHES_METRIC,
    PASSES_SAVED_METRIC,
    PIPELINE_BRANCHES_METRIC,
    PIPELINE_TIMER,
    REPLAY_TIMER,
    SCALAR_FALLBACK_METRIC,
    TRACE_BRANCHES_METRIC,
    TRACE_TIMER,
    VECTOR_BRANCHES_METRIC,
)
from .engine import cache as artifact_cache
from .engine import trace_branches, workload_program, workload_run
from .harness import (
    EXPERIMENTS,
    SCALES,
    SPECS,
    SPECULATION_BATTERY,
    RunAborted,
    Scale,
    clear_abort,
    default_jobs,
    plan_resume,
    render_report,
    request_abort,
    run_all,
    run_experiment,
)
from .harness.spec import SECTIONS
from .obs.registry import REGISTRY
from .pipeline import BACKEND_NAMES, normalize_backend
from .harness.plot import distance_chart, figure1_chart, sweep_chart
from .obs import journal as obs_journal
from .obs.journal import RunJournal
from .obs.profile import SORT_KEYS, hot_branches, profile_experiment
from .workloads import SUITE, generate_source, get_profile


#: Environment fallback for ``--segment-instructions`` (CI shard jobs
#: set it once instead of threading the flag through every command).
SEGMENT_ENV = "REPRO_SEGMENT_INSTRUCTIONS"

#: Environment fallback for ``--backend`` (CI backend jobs set it once
#: instead of threading the flag through every command).
BACKEND_ENV = "REPRO_BACKEND"


def _backend_from_env() -> Optional[str]:
    raw = os.environ.get(BACKEND_ENV, "").strip()
    if not raw:
        return None
    try:
        return normalize_backend(raw)
    except ValueError as error:
        raise SystemExit(f"invalid {BACKEND_ENV}={raw!r}: {error}")


def _segment_instructions_from_env() -> Optional[int]:
    raw = os.environ.get(SEGMENT_ENV, "").strip()
    if not raw:
        return None
    try:
        value = int(raw)
    except ValueError:
        raise SystemExit(
            f"invalid {SEGMENT_ENV}={raw!r}: expected an integer"
            " instruction count (0 disables segmentation)"
        )
    return value if value > 0 else None


def _scale_from_args(
    args: argparse.Namespace, fallback: Optional[Scale] = None
) -> Scale:
    preset_name = getattr(args, "scale", None)
    segment_flag = getattr(args, "segment_instructions", None)
    backend_flag = getattr(args, "backend", None)
    if (
        preset_name is None
        and fallback is not None
        and args.iterations is None
        and args.pipeline_instructions is None
        and args.workloads is None
        and segment_flag is None
        and backend_flag is None
    ):
        # --resume with no explicit sizing: reuse the prior run's scale
        return fallback
    preset = SCALES[preset_name or "full"]
    iterations = args.iterations if args.iterations is not None else preset.iterations
    pipeline_instructions = (
        args.pipeline_instructions
        if args.pipeline_instructions is not None
        else preset.pipeline_instructions
    )
    workloads = (
        tuple(args.workloads.split(",")) if args.workloads else preset.workloads
    )
    # flag beats environment beats preset; 0 explicitly disables
    if segment_flag is not None:
        segment_instructions = segment_flag if segment_flag > 0 else None
    else:
        segment_instructions = (
            _segment_instructions_from_env() or preset.segment_instructions
        )
    # same precedence for the backend dimension
    backend = backend_flag or _backend_from_env() or preset.backend
    return Scale(
        iterations=iterations,
        pipeline_instructions=pipeline_instructions,
        workloads=workloads,
        segment_instructions=segment_instructions,
        backend=normalize_backend(backend),
    )


def _add_scale_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scale",
        choices=sorted(SCALES),
        default=None,
        help="scale preset (default: full, or the resumed run's scale"
        " with --resume); explicit flags below override its values",
    )
    parser.add_argument(
        "--iterations",
        type=int,
        default=None,
        help="outer-loop iterations per workload (default: preset/profile value)",
    )
    parser.add_argument(
        "--pipeline-instructions",
        type=int,
        default=None,
        help="committed-instruction budget for pipeline experiments",
    )
    parser.add_argument(
        "--workloads",
        default=None,
        help="comma-separated workload subset (default: preset suite)",
    )
    parser.add_argument(
        "--segment-instructions",
        type=int,
        default=None,
        metavar="N",
        help="shard pipeline simulations into checkpointable segments of"
        " N committed instructions (0 disables; default:"
        " $REPRO_SEGMENT_INSTRUCTIONS or the preset's value; see"
        " docs/performance.md)",
    )
    parser.add_argument(
        "--backend",
        choices=list(BACKEND_NAMES),
        default=None,
        help="pipeline backend for cycle-level experiments (default:"
        " $REPRO_BACKEND or inorder; see docs/pipeline-backends.md)",
    )


def _add_execution_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for the battery (default: $REPRO_JOBS or 1)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the on-disk artifact cache for this invocation",
    )
    parser.add_argument(
        "--journal",
        default=None,
        metavar="PATH",
        help="write a structured JSONL run journal to PATH"
        " (see docs/observability.md for the event schema)",
    )
    parser.add_argument(
        "--resume",
        default=None,
        metavar="JOURNAL",
        help="resume a prior run from its journal: finished experiments"
        " are restored from checkpoints, only the rest execute"
        " (see docs/robustness.md)",
    )
    parser.add_argument(
        "--task-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-task wall-clock timeout; a hung worker is classified,"
        " the pool recycled and the task retried"
        " (default: $REPRO_TASK_TIMEOUT or off)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=None,
        metavar="N",
        help="extra attempts for a failed experiment before serial"
        " fallback (default: $REPRO_TASK_RETRIES or 2)",
    )
    parser.add_argument(
        "--deterministic",
        action="store_true",
        help="render the report without timestamps or the performance"
        " section, so two equivalent runs diff byte-identical",
    )


def _open_journal(args: argparse.Namespace) -> Optional[RunJournal]:
    path = getattr(args, "journal", None)
    return RunJournal(path) if path else None


def _resolve_execution(
    args: argparse.Namespace, journal: Optional[RunJournal] = None
) -> int:
    """Apply --no-cache and resolve the worker count."""
    if getattr(args, "no_cache", False):
        artifact_cache.configure(enabled=False)
    jobs = getattr(args, "jobs", None)
    return max(1, jobs) if jobs is not None else default_jobs(journal)


#: Dependency kinds that run the cycle-level pipeline simulator and
#: therefore honour the ``--backend`` dimension; everything else is
#: trace-level and backend-independent.
_PIPELINE_DEP_KINDS = frozenset({"pipeline", "gating", "eager"})


def battery_table_markdown() -> str:
    """The README's battery table, generated from the spec registry."""
    lines = [
        "| experiment | paper artifact | title | backends | command |",
        "|---|---|---|---|---|",
    ]
    for spec in SPECS.in_order():
        paper_ref = spec.paper_ref or "--"
        backends = (
            ", ".join(BACKEND_NAMES)
            if _PIPELINE_DEP_KINDS & set(spec.dep_kinds())
            else "--"
        )
        lines.append(
            f"| `{spec.experiment_id}` | {paper_ref} | {spec.title}"
            f" | {backends} | `repro run {spec.experiment_id}` |"
        )
    return "\n".join(lines)


def _command_list(args: argparse.Namespace) -> int:
    if getattr(args, "markdown", False):
        print(battery_table_markdown())
        return 0
    for section, specs in SPECS.by_section().items():
        print(f"experiments ({SECTIONS.get(section, section)}):")
        for spec in specs:
            ref = f" [{spec.paper_ref}]" if spec.paper_ref else ""
            print(f"  {spec.experiment_id:22s} {spec.title}{ref}")
    print("workloads:")
    for name in SUITE:
        profile = get_profile(name)
        print(f"  {name:10s} {profile.description}")
    return 0


def _resume_plan(args: argparse.Namespace):
    path = getattr(args, "resume", None)
    return plan_resume(path) if path else None


#: Exit status for an interrupted run (128 + SIGINT, shell convention).
ABORT_EXIT_STATUS = 130


@contextlib.contextmanager
def _graceful_interrupts():
    """Drain-then-stop signal handling around a battery run.

    The first SIGINT/SIGTERM raises the harness abort flag: in-flight
    experiments finish and are checkpointed, then the run raises
    :class:`RunAborted` (journaled as a terminal ``run_aborted`` event,
    so ``--resume`` works).  A second signal falls back to an immediate
    ``KeyboardInterrupt`` for genuinely stuck runs.
    """
    signals_seen = {"count": 0}

    def _handler(signum, frame):  # noqa: ARG001 - signal API
        signals_seen["count"] += 1
        if signals_seen["count"] > 1:
            raise KeyboardInterrupt
        print(
            "repro: interrupt received; draining in-flight experiments"
            " (interrupt again to stop immediately)",
            file=sys.stderr,
        )
        request_abort()

    previous = {}
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            previous[signum] = signal.signal(signum, _handler)
        except (ValueError, OSError):  # non-main thread / unsupported
            pass
    try:
        yield
    finally:
        clear_abort()
        for signum, handler in previous.items():
            signal.signal(signum, handler)


def _report_abort(aborted: RunAborted, args: argparse.Namespace) -> int:
    finished = len(aborted.results)
    journal_path = getattr(args, "journal", None)
    hint = f" (resume with --resume {journal_path})" if journal_path else ""
    print(
        f"repro: run aborted; {finished} experiment(s) finished and"
        f" checkpointed{hint}",
        file=sys.stderr,
    )
    return ABORT_EXIT_STATUS


def _render(results, scale, journal, args: argparse.Namespace) -> str:
    if getattr(args, "deterministic", False):
        return render_report(
            results,
            scale,
            clock=lambda: "(timestamp stripped)",
            performance=False,
            journal=journal,
        )
    return render_report(results, scale, journal=journal)


def _command_run(args: argparse.Namespace) -> int:
    journal = _open_journal(args)
    try:
        with _graceful_interrupts():
            return _run_command_body(args, journal)
    except RunAborted as aborted:
        return _report_abort(aborted, args)
    finally:
        if journal is not None:
            journal.close()


def _run_command_body(args: argparse.Namespace, journal) -> int:
    jobs = _resolve_execution(args, journal)
    plan = _resume_plan(args)
    scale = _scale_from_args(args, fallback=plan.scale if plan else None)
    if args.experiment is None:
        # no experiment named: run the whole battery as a report
        # (with --resume, the prior run's selection)
        only = plan.selection if plan and plan.selection else None
        results = run_all(
            scale,
            only=only,
            jobs=jobs,
            journal=journal,
            resume=args.resume,
            task_timeout=args.task_timeout,
            retries=args.retries,
        )
        print(_render(results, scale, journal, args))
        return 0
    if jobs > 1 or journal is not None or args.resume:
        results = run_all(
            scale,
            only=[args.experiment],
            jobs=jobs,
            journal=journal,
            resume=args.resume,
            task_timeout=args.task_timeout,
            retries=args.retries,
        )
        result = results[args.experiment]
    else:
        result = run_experiment(args.experiment, scale)
    print(result.to_json() if args.json else result.to_text())
    return 0


def _run_battery_command(
    args: argparse.Namespace, only: Optional[List[str]]
) -> int:
    """Shared run-all/speculate body: battery -> rendered report."""
    journal = _open_journal(args)
    try:
        jobs = _resolve_execution(args, journal)
        plan = _resume_plan(args)
        scale = _scale_from_args(args, fallback=plan.scale if plan else None)
        with _graceful_interrupts():
            results = run_all(
                scale,
                only=only,
                jobs=jobs,
                journal=journal,
                resume=args.resume,
                task_timeout=args.task_timeout,
                retries=args.retries,
            )
        report = _render(results, scale, journal, args)
    except RunAborted as aborted:
        return _report_abort(aborted, args)
    finally:
        if journal is not None:
            journal.close()
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(report)
        print(f"wrote {args.out}")
    else:
        print(report)
    return 0


def _command_run_all(args: argparse.Namespace) -> int:
    plan = _resume_plan(args)
    only = args.only.split(",") if args.only else None
    if only is None and plan and plan.selection:
        only = plan.selection
    return _run_battery_command(args, only)


def _command_speculate(args: argparse.Namespace) -> int:
    """Run the speculation-control battery and render its report."""
    return _run_battery_command(args, list(SPECULATION_BATTERY))


#: ``--metric`` choices: which bench section carries the gated
#: branches/s figure.  ``replay`` is trace-measurement throughput
#: (``simulation``); ``pipeline`` is cycle-level simulator throughput
#: (``pipeline``, new in repro-bench/3; carries a ``backend`` field
#: since repro-bench/4).
BENCH_METRIC_SECTIONS = {"replay": "simulation", "pipeline": "pipeline"}


def _bench_backend(payload: dict) -> str:
    """Pipeline backend a bench snapshot measured.

    Pre-``repro-bench/4`` snapshots have no ``backend`` field -- they
    all measured the in-order pipeline, so absent means ``inorder``.
    """
    return payload.get("pipeline", {}).get("backend") or "inorder"


def _bench_branches_per_second(
    payload: dict, metric: str = "replay"
) -> Optional[float]:
    """Throughput of a bench snapshot's ``metric`` section, or ``None``
    if that work did not run (warm cache, or a pre-``repro-bench/3``
    snapshot without a ``pipeline`` section).  ``repro-bench/1`` wrote
    ``0.0`` for "no replay"; treat that the same as the explicit
    ``null`` of later schemas."""
    section = BENCH_METRIC_SECTIONS[metric]
    value = payload.get(section, {}).get("branches_per_second")
    if not value:  # None, absent or the v1 0.0 sentinel
        return None
    return float(value)


def _bench_compare(args: argparse.Namespace) -> int:
    """Compare two bench snapshots; gate speedup/regression for CI."""
    baseline_path, candidate_path = args.compare
    with open(baseline_path) as handle:
        baseline = json.load(handle)
    with open(candidate_path) as handle:
        candidate = json.load(handle)
    metric = args.metric
    section = BENCH_METRIC_SECTIONS[metric]
    if metric == "pipeline":
        base_backend = _bench_backend(baseline)
        cand_backend = _bench_backend(candidate)
        if base_backend != cand_backend:
            # Different backends execute different cycle-level work, so
            # a throughput ratio between them is meaningless -- refuse
            # outright rather than gating on a bogus number.
            print(
                f"FAIL: cannot compare pipeline throughput across"
                f" backends: baseline measured {base_backend!r}"
                f" ({baseline_path}), candidate measured"
                f" {cand_backend!r} ({candidate_path}); re-run bench"
                f" with matching --backend values"
            )
            return 1
    base_bps = _bench_branches_per_second(baseline, metric)
    cand_bps = _bench_branches_per_second(candidate, metric)
    speedup = (
        cand_bps / base_bps
        if base_bps is not None and cand_bps is not None
        else None
    )

    def fmt(value: Optional[float], pattern: str = "{:,.0f}") -> str:
        return pattern.format(value) if value is not None else "n/a"

    print(
        f"bench compare ({metric}): {baseline_path} -> {candidate_path}"
    )
    print(f"  {'metric':24s} {'baseline':>14s} {'candidate':>14s} {'ratio':>8s}")
    rows = [
        ("branches/s", base_bps, cand_bps, speedup),
        (
            "wall seconds",
            baseline.get("wall_seconds"),
            candidate.get("wall_seconds"),
            None,
        ),
        (
            "measured branches",
            baseline.get(section, {}).get("branches"),
            candidate.get(section, {}).get("branches"),
            None,
        ),
    ]
    for label, base, cand, ratio in rows:
        pattern = "{:,.2f}" if label == "wall seconds" else "{:,.0f}"
        ratio_text = f"{ratio:7.2f}x" if ratio is not None else f"{'n/a':>8s}"
        print(
            f"  {label:24s} {fmt(base, pattern):>14s}"
            f" {fmt(cand, pattern):>14s} {ratio_text}"
        )
    status = 0
    if speedup is None and (
        args.min_speedup is not None or args.max_regression is not None
    ):
        # One side measured no work in this section (warm-cache run, or
        # a pre-repro-bench/3 snapshot without it): there is nothing to
        # gate.  Failing here turned every warm-baseline comparison into
        # a spurious CI red, so incomparable rows skip the gates.
        which = "baseline" if base_bps is None else "candidate"
        print(
            f"skip: {which} has no {metric} branches/s"
            " (warm cache or missing section); gates not applied"
        )
        return 0
    if args.min_speedup is not None:
        if speedup < args.min_speedup:
            print(
                f"FAIL: speedup {speedup:.2f}x below required"
                f" {args.min_speedup:.2f}x"
            )
            status = 1
        else:
            print(f"ok: speedup {speedup:.2f}x >= {args.min_speedup:.2f}x")
    if args.max_regression is not None:
        floor = 1.0 - args.max_regression
        if speedup < floor:
            print(
                f"FAIL: candidate at {speedup:.2f}x of baseline,"
                f" below the {floor:.2f}x regression floor"
                f" (max regression {args.max_regression:.0%})"
            )
            status = 1
        else:
            print(
                f"ok: candidate at {speedup:.2f}x of baseline"
                f" (regression floor {floor:.2f}x)"
            )
    return status


def _command_bench(args: argparse.Namespace) -> int:
    """Run a battery and emit a machine-readable benchmark summary."""
    if args.compare:
        return _bench_compare(args)
    jobs = _resolve_execution(args)
    scale = _scale_from_args(args)
    only = args.only.split(",") if args.only else None
    cache = artifact_cache.get_cache()
    cache_baseline = cache.stats.snapshot()
    metrics_baseline = REGISTRY.snapshot()
    started = time.perf_counter()
    results = run_all(scale, only=only, jobs=jobs)
    wall_seconds = time.perf_counter() - started
    stats = cache.stats.since(cache_baseline)
    metrics = REGISTRY.since(metrics_baseline)
    branches = metrics.counters.get(BRANCHES_METRIC, 0.0)
    sim_seconds = metrics.timers.get(REPLAY_TIMER, None)
    sim_seconds = sim_seconds.seconds if sim_seconds is not None else 0.0
    trace_seconds = metrics.timers.get(TRACE_TIMER, None)
    trace_seconds = trace_seconds.seconds if trace_seconds is not None else 0.0
    pipeline_branches = metrics.counters.get(PIPELINE_BRANCHES_METRIC, 0.0)
    pipeline_seconds = metrics.timers.get(PIPELINE_TIMER, None)
    pipeline_seconds = (
        pipeline_seconds.seconds if pipeline_seconds is not None else 0.0
    )
    lookups = stats.hits + stats.misses
    payload = {
        "schema": "repro-bench/4",
        "scale": {
            "iterations": scale.iterations,
            "pipeline_instructions": scale.pipeline_instructions,
            "segment_instructions": scale.segment_instructions,
            "backend": scale.backend,
            "workloads": list(scale.workloads),
        },
        "jobs": jobs,
        "wall_seconds": wall_seconds,
        "experiments": [
            {
                "id": experiment_id,
                "duration_s": result.duration_s,
            }
            for experiment_id, result in results.items()
        ],
        "simulation": {
            "branches": int(branches),
            "seconds": sim_seconds,
            # null, not 0.0, when the run replayed nothing (warm cache):
            # an inflated or zero rate would poison bench comparisons.
            "branches_per_second": (
                branches / sim_seconds
                if branches > 0 and sim_seconds > 0
                else None
            ),
            "vector_branches": int(
                metrics.counters.get(VECTOR_BRANCHES_METRIC, 0.0)
            ),
            "scalar_fallback_branches": int(
                metrics.counters.get(SCALAR_FALLBACK_METRIC, 0.0)
            ),
        },
        "pipeline": {
            "backend": scale.backend,
            "branches": int(pipeline_branches),
            "seconds": pipeline_seconds,
            # same null-not-zero discipline as "simulation" above
            "branches_per_second": (
                pipeline_branches / pipeline_seconds
                if pipeline_branches > 0 and pipeline_seconds > 0
                else None
            ),
        },
        "trace_generation": {
            "branches": int(
                metrics.counters.get(TRACE_BRANCHES_METRIC, 0.0)
            ),
            "seconds": trace_seconds,
        },
        "cache": {
            "hits": stats.hits,
            "misses": stats.misses,
            "writes": stats.writes,
            "hit_rate": stats.hits / lookups if lookups else 0.0,
        },
        "session": {
            "bank_passes": int(metrics.counters.get(BANK_PASSES_METRIC, 0.0)),
            "passes_saved": int(
                metrics.counters.get(PASSES_SAVED_METRIC, 0.0)
            ),
        },
    }
    rendered = json.dumps(payload, indent=2, sort_keys=True)
    if args.json_path:
        with open(args.json_path, "w") as handle:
            handle.write(rendered + "\n")
        print(f"wrote {args.json_path}")
    else:
        print(rendered)
    return 0


def _command_profile(args: argparse.Namespace) -> int:
    """cProfile one experiment; optionally census hot branch sites."""
    scale = _scale_from_args(args)
    result, stats_text = profile_experiment(
        args.experiment, scale, sort=args.sort, limit=args.limit
    )
    print(f"# profile: {args.experiment} ({result.title})")
    print(stats_text)
    if args.hot_branches:
        for workload in scale.workloads:
            __, table = hot_branches(
                workload, args.predictor, scale, top=args.top
            )
            print(table.to_text())
            print()
    return 0


def _command_journal(args: argparse.Namespace) -> int:
    """Validate journal files against the event schema."""
    status = 0
    for path in args.paths:
        print(obs_journal.summarize(path))
        __, errors = obs_journal.validate_journal(path)
        if errors:
            status = 1
    return status


def _command_cache(args: argparse.Namespace) -> int:
    cache = artifact_cache.get_cache()
    if args.cache_command == "clear":
        removed = cache.clear()
        print(f"removed {removed} cached artifacts from {cache.root}")
        return 0
    if args.cache_command == "verify":
        report = cache.verify()
        print(f"cache directory: {cache.root}")
        print(f"checked:         {report['checked']} entries")
        print(f"ok:              {report['ok']}")
        print(f"corrupt:         {len(report['corrupt'])}")
        for key in report["corrupt"]:
            print(f"  corrupt: {key}")
        print(f"unreadable:      {len(report['unreadable'])}")
        for key in report["unreadable"]:
            print(f"  unreadable: {key}")
        return 1 if report["corrupt"] or report["unreadable"] else 0
    info = cache.info()
    stats = info["stats"]
    print(f"cache directory: {info['root']}")
    print(f"enabled:         {info['enabled']}")
    print(f"version salt:    {info['salt']}")
    print(f"entries:         {info['files']} files, {info['bytes']:,} bytes")
    print(
        "session stats:   "
        f"{stats['hits']} hits, {stats['misses']} misses,"
        f" {stats['writes']} writes, {stats['errors']} errors,"
        f" {stats['corrupt']} corrupt"
    )
    for kind, detail in info["kinds"].items():
        print(f"  {kind:14s} {detail['files']:4d} files  {detail['bytes']:,} bytes")
    return 0


def _plottable() -> tuple:
    """Experiment ids whose specs declare a plotted figure."""
    return tuple(
        spec.experiment_id for spec in SPECS.in_order() if spec.plot
    )


PLOTTABLE = _plottable()


def _command_plot(args: argparse.Namespace) -> int:
    """Render a figure experiment as ASCII charts."""
    result = run_experiment(args.experiment, _scale_from_args(args))
    experiment_id = args.experiment
    if experiment_id == "fig1":
        print(figure1_chart(result.data["curves"]))
        return 0
    if experiment_id == "fig3":
        lines = {"enhanced": result.data["enhanced"], "original": result.data["original"]}
        for metric in ("pvp", "pvn"):
            print(sweep_chart(lines, f"Figure 3: {metric} vs threshold", metric))
            print()
        return 0
    if experiment_id in ("fig4", "fig5"):
        lines = {
            f"{size} MDCs": line for size, line in result.data["lines"].items()
        }
        for metric in ("pvp", "pvn"):
            print(sweep_chart(lines, f"{result.title}: {metric}", metric))
            print()
        return 0
    # distance figures
    print(
        distance_chart(
            {"all": result.data["all"], "committed": result.data["committed"]},
            result.title,
        )
    )
    return 0


def _command_workload(args: argparse.Namespace) -> int:
    profile = get_profile(args.name)
    if args.source:
        print(generate_source(profile, iterations=args.iterations))
        return 0
    program = workload_program(args.name, args.iterations)
    run = workload_run(args.name, args.iterations)
    print(f"workload {profile.name}: {profile.description}")
    print(f"  static sites:     {len(profile.sites)}")
    print(f"  code size:        {len(program)} instructions")
    print(f"  dynamic instr:    {run.stats.instructions:,}")
    print(f"  dynamic branches: {run.stats.branches:,}")
    print(f"  branch fraction:  {run.stats.branch_fraction:.1%}")
    print(f"  taken rate:       {run.trace.taken_rate:.1%}")
    return 0


def _command_trace(args: argparse.Namespace) -> int:
    program = workload_program(args.name, args.iterations)
    traced = trace_branches(program)
    traced.trace.save(args.output)
    print(
        f"wrote {len(traced.trace):,} branches"
        f" ({traced.stats.instructions:,} instructions) to {args.output}"
    )
    return 0


def _csv(value: Optional[str]) -> tuple:
    return tuple(part for part in (value or "").split(",") if part)


def _command_serve(args: argparse.Namespace) -> int:
    """Run the streaming estimator server until SIGINT/SIGTERM."""
    from .serve import ServeConfig, run_server

    config = ServeConfig(
        host=args.host,
        port=args.port,
        workers=max(1, args.workers),
        credits=max(1, args.credits),
        snapshot_every=max(1, args.snapshot_every),
        window=args.window,
        gate_threshold=args.gate_threshold,
        heartbeat_s=args.heartbeat,
        heartbeat_timeout_s=args.heartbeat_timeout,
        max_restarts=args.max_restarts,
        restart_backoff_s=args.restart_backoff,
        session_queue_limit=max(1, args.session_queue_limit),
        idle_timeout_s=args.idle_timeout,
    )
    journal = _open_journal(args)
    try:
        asyncio.run(run_server(config, journal))
    finally:
        if journal is not None:
            journal.close()
    return 0


def _command_load(args: argparse.Namespace) -> int:
    """Replay workload traces as concurrent sessions; print a report."""
    from .serve import LoadConfig, run_load

    config = LoadConfig(
        host=args.host,
        port=args.port,
        clients=max(1, args.clients),
        sessions=max(1, args.sessions),
        rate=args.rate,
        batch=max(1, args.batch),
        workloads=_csv(args.workloads),
        predictor=args.predictor,
        estimators=_csv(args.estimators),
        iterations=args.iterations,
        window=args.window,
        verify=args.verify,
        retries=args.retries,
        timeout_s=args.timeout,
    )
    journal = _open_journal(args)
    try:
        report = asyncio.run(run_load(config, journal))
    finally:
        if journal is not None:
            journal.close()
    print(report.render())
    return 1 if report.failed or report.mismatches else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Confidence Estimation for Speculation Control (ISCA 1998)"
        " -- reproduction toolkit",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    list_parser = subparsers.add_parser(
        "list", help="list experiments and workloads"
    )
    list_parser.add_argument(
        "--markdown",
        action="store_true",
        help="emit the battery table as markdown (what README.md embeds)",
    )

    run_parser = subparsers.add_parser(
        "run", help="run one experiment (or the whole battery if omitted)"
    )
    run_parser.add_argument(
        "experiment", nargs="?", default=None, choices=sorted(EXPERIMENTS)
    )
    run_parser.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )
    _add_scale_arguments(run_parser)
    _add_execution_arguments(run_parser)

    run_all_parser = subparsers.add_parser("run-all", help="run the whole battery")
    run_all_parser.add_argument("--only", default=None, help="comma-separated ids")
    run_all_parser.add_argument("--out", default=None, help="write report to a file")
    _add_scale_arguments(run_all_parser)
    _add_execution_arguments(run_all_parser)

    speculate_parser = subparsers.add_parser(
        "speculate",
        help="run the speculation-control battery"
        f" ({', '.join(SPECULATION_BATTERY)})",
    )
    speculate_parser.add_argument(
        "--out", default=None, help="write the report to a file"
    )
    _add_scale_arguments(speculate_parser)
    _add_execution_arguments(speculate_parser)

    bench_parser = subparsers.add_parser(
        "bench",
        help="run a battery and emit a machine-readable benchmark summary"
        " (wall time, branches/s, cache hit rate, bank passes saved)",
    )
    bench_parser.add_argument(
        "--json",
        dest="json_path",
        default=None,
        metavar="PATH",
        help="write the JSON summary to PATH instead of stdout",
    )
    bench_parser.add_argument(
        "--only", default=None, help="comma-separated experiment ids"
    )
    bench_parser.add_argument(
        "--compare",
        nargs=2,
        default=None,
        metavar=("BASELINE.json", "CANDIDATE.json"),
        help="compare two bench snapshots instead of running a battery:"
        " print the speedup table and apply --min-speedup /"
        " --max-regression gates (exit 1 on violation)",
    )
    bench_parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        metavar="X",
        help="with --compare: fail unless candidate branches/s is at"
        " least X times the baseline's",
    )
    bench_parser.add_argument(
        "--max-regression",
        type=float,
        default=None,
        metavar="FRACTION",
        help="with --compare: fail if candidate branches/s regresses"
        " more than FRACTION (e.g. 0.25) below the baseline",
    )
    bench_parser.add_argument(
        "--metric",
        choices=sorted(BENCH_METRIC_SECTIONS),
        default="replay",
        help="with --compare: which throughput to gate -- trace-replay"
        " branches/s (replay, default) or cycle-level pipeline"
        " branches/s (pipeline, repro-bench/3+ snapshots)",
    )
    _add_scale_arguments(bench_parser)
    bench_parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for the battery (default: $REPRO_JOBS or 1)",
    )
    bench_parser.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the on-disk artifact cache for this invocation",
    )

    cache_parser = subparsers.add_parser(
        "cache", help="inspect or clear the on-disk artifact cache"
    )
    cache_parser.add_argument(
        "cache_command",
        choices=("info", "clear", "verify"),
        help="info: show location/size/hit-rates; clear: delete all"
        " entries; verify: unpickle every entry and report corrupt ones"
        " (exit 1 if any)",
    )

    profile_parser = subparsers.add_parser(
        "profile",
        help="run one experiment under cProfile"
        " (optionally with a hot-branch census)",
    )
    profile_parser.add_argument("experiment", choices=sorted(EXPERIMENTS))
    _add_scale_arguments(profile_parser)
    profile_parser.add_argument(
        "--sort", choices=SORT_KEYS, default="cumulative",
        help="pstats sort key (default: cumulative)",
    )
    profile_parser.add_argument(
        "--limit", type=int, default=25, help="pstats rows to print"
    )
    profile_parser.add_argument(
        "--hot-branches",
        action="store_true",
        help="also print the top mispredicting branch sites per workload",
    )
    profile_parser.add_argument(
        "--predictor",
        default="gshare",
        help="predictor for the hot-branch census (default: gshare)",
    )
    profile_parser.add_argument(
        "--top", type=int, default=10, help="hot-branch sites to list"
    )

    journal_parser = subparsers.add_parser(
        "journal", help="validate and summarise JSONL run journals"
    )
    journal_parser.add_argument("paths", nargs="+", metavar="JOURNAL")

    plot_parser = subparsers.add_parser(
        "plot", help="render a figure experiment as an ASCII chart"
    )
    plot_parser.add_argument("experiment", choices=PLOTTABLE)
    _add_scale_arguments(plot_parser)

    workload_parser = subparsers.add_parser(
        "workload", help="inspect a synthetic workload"
    )
    workload_parser.add_argument("name", choices=SUITE)
    workload_parser.add_argument("--iterations", type=int, default=None)
    workload_parser.add_argument(
        "--source", action="store_true", help="print the generated assembly"
    )

    trace_parser = subparsers.add_parser(
        "trace", help="write a workload's branch trace to a file"
    )
    trace_parser.add_argument("name", choices=SUITE)
    trace_parser.add_argument("output")
    trace_parser.add_argument("--iterations", type=int, default=None)

    serve_parser = subparsers.add_parser(
        "serve",
        help="run the streaming confidence-estimation server"
        " (length-prefixed JSONL sessions over TCP)",
    )
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument(
        "--port",
        type=int,
        default=0,
        help="TCP port (default 0: pick a free port and print it)",
    )
    serve_parser.add_argument(
        "--workers",
        type=int,
        default=2,
        help="supervised estimator worker processes (default 2)",
    )
    serve_parser.add_argument(
        "--credits",
        type=int,
        default=8,
        help="flow-control credits: batches a client may have in flight",
    )
    serve_parser.add_argument(
        "--snapshot-every",
        type=int,
        default=4,
        help="batches a worker applies between session snapshots",
    )
    serve_parser.add_argument(
        "--window",
        type=int,
        default=256,
        help="default metrics window in branches (hello may override)",
    )
    serve_parser.add_argument(
        "--gate-threshold",
        type=float,
        default=0.25,
        help="low-confidence fraction at which a window's gating"
        " decision flips (hello may override)",
    )
    serve_parser.add_argument(
        "--heartbeat",
        type=float,
        default=1.0,
        help="worker heartbeat cadence in seconds",
    )
    serve_parser.add_argument(
        "--heartbeat-timeout",
        type=float,
        default=15.0,
        help="unanswered-heartbeat deadline before a worker is recycled",
    )
    serve_parser.add_argument(
        "--max-restarts",
        type=int,
        default=3,
        help="restarts per worker slot before degrading to in-process"
        " serial serving",
    )
    serve_parser.add_argument(
        "--restart-backoff",
        type=float,
        default=0.05,
        help="base seconds of the deterministic exponential restart"
        " backoff",
    )
    serve_parser.add_argument(
        "--session-queue-limit",
        type=int,
        default=64,
        help="outbound frames buffered per session before the client"
        " is shed",
    )
    serve_parser.add_argument(
        "--idle-timeout",
        type=float,
        default=None,
        help="per-session deadline (seconds) for the next client frame",
    )
    serve_parser.add_argument(
        "--journal",
        default=None,
        metavar="PATH",
        help="write server/session events as a JSONL run journal",
    )

    load_parser = subparsers.add_parser(
        "load",
        help="replay workload traces as concurrent streaming sessions"
        " against a running server",
    )
    load_parser.add_argument("--host", default="127.0.0.1")
    load_parser.add_argument("--port", type=int, required=True)
    load_parser.add_argument(
        "--clients", type=int, default=4, help="concurrent client tasks"
    )
    load_parser.add_argument(
        "--sessions", type=int, default=8, help="total sessions to stream"
    )
    load_parser.add_argument(
        "--rate",
        type=float,
        default=0.0,
        help="batches/s per session (0: as fast as credits allow)",
    )
    load_parser.add_argument(
        "--batch", type=int, default=512, help="branches per batch"
    )
    load_parser.add_argument(
        "--workloads",
        default=None,
        help="comma-separated workloads (default: whole suite round-robin)",
    )
    load_parser.add_argument("--predictor", default="gshare")
    load_parser.add_argument(
        "--estimators",
        default=None,
        help="comma-separated estimator families (default: all bank"
        " families)",
    )
    load_parser.add_argument("--iterations", type=int, default=None)
    load_parser.add_argument(
        "--window", type=int, default=256, help="metrics window in branches"
    )
    load_parser.add_argument(
        "--verify",
        action="store_true",
        help="recompute each cell with batch measure_bank and require the"
        " streamed result to be exactly equal",
    )
    load_parser.add_argument(
        "--retries",
        type=int,
        default=2,
        help="reconnect budget per session (fresh id, replay from start)",
    )
    load_parser.add_argument(
        "--timeout",
        type=float,
        default=120.0,
        help="per-session-attempt deadline in seconds",
    )
    load_parser.add_argument(
        "--journal",
        default=None,
        metavar="PATH",
        help="journal the load report as a server_load_report event",
    )

    return parser


_COMMANDS = {
    "list": _command_list,
    "run": _command_run,
    "run-all": _command_run_all,
    "speculate": _command_speculate,
    "bench": _command_bench,
    "cache": _command_cache,
    "plot": _command_plot,
    "profile": _command_profile,
    "journal": _command_journal,
    "workload": _command_workload,
    "trace": _command_trace,
    "serve": _command_serve,
    "load": _command_load,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
