"""Structured run journal: one JSON object per line, schema-checked.

``repro run --journal PATH`` (and ``run-all``) make the harness narrate
a battery run as machine-readable events.  Both the serial and the
parallel paths write the same event vocabulary, so a journal diff is a
scheduling diff, never a results diff.

Event vocabulary (see ``docs/observability.md`` for the field tables):

* ``run_started`` -- selection, scale, worker count, execution mode;
* ``warm_task`` -- one artifact warm-up task (parallel path only);
* ``experiment_started`` / ``experiment_finished`` -- per experiment,
  with ``mode`` saying whether it ran ``"serial"`` or ``"parallel"``;
* ``experiment_failed`` -- a failed attempt, with the traceback and a
  ``classification`` from the failure taxonomy (``timeout`` / ``crash``
  / ``corrupt_artifact`` / ``retryable`` / ``fatal``);
* ``experiment_retry`` -- the supervisor rescheduling a failed
  experiment: attempt number, classification, backoff delay;
* ``experiment_skipped`` -- resume mode found the experiment already
  finished in the prior journal (its checkpointed result was reused);
* ``pool_recycled`` -- the worker pool was torn down and rebuilt
  (hung worker, broken pool);
* ``run_resumed`` -- this run continues a prior journal; lists the
  experiments it skipped;
* ``run_aborted`` -- the run was interrupted (SIGINT/SIGTERM) after
  draining in-flight tasks; lists the experiments whose checkpoints
  are consistent, so ``--resume`` can continue from here;
* ``server_started`` / ``server_stopped`` -- the streaming estimator
  server's lifetime (:mod:`repro.serve`);
* ``server_worker_restarted`` -- a serving worker died or stalled and
  was recycled, with the failure-taxonomy classification;
* ``server_degraded`` -- the worker pool was abandoned and serving
  fell back to a single in-process serial worker;
* ``server_load_report`` -- ``repro load``'s closing summary: batch
  latency percentiles and session throughput;
* ``session_opened`` / ``session_closed`` -- one client session's
  lifetime on the estimator server;
* ``session_recovered`` -- a session was restored from its snapshot
  onto a recycled worker (``replayed`` = buffered batches re-sent);
* ``session_shed`` -- a session was dropped (slow client, credit
  violation, worker loss without a snapshot);
* ``warning`` -- non-fatal configuration or scheduling problems (bad
  ``REPRO_JOBS``, pool-level fallback, cache store/read errors,
  corrupt artifacts);
* ``speculation_summary`` -- per speculation-control experiment, the
  per-workload result rows (wrong-path savings, IPC delta, ...) the
  report's "Speculation control" section is built from;
* ``cache_stats`` -- the run's artifact-cache hit/miss delta;
* ``metrics_snapshot`` -- the run's metrics-registry delta
  (:mod:`repro.obs.registry`), including ``sim.branches``;
* ``run_finished`` -- experiment ids and total wall time.

Every line carries ``v`` (schema version), ``seq`` (0-based, strictly
increasing per journal) and ``ts`` (unix seconds).  Unknown *extra*
fields are allowed -- consumers must ignore what they do not know --
but missing required fields or wrong types fail validation.

``python -m repro.obs.journal PATH`` (or ``repro journal PATH``)
validates a journal and prints an event census; CI runs it over the
smoke-battery journal and uploads the file as a workflow artifact.
"""

from __future__ import annotations

import io
import json
import os
import time
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

#: Bump when an event gains/loses *required* fields or changes meaning.
SCHEMA_VERSION = 1

_NUMBER = (int, float)

#: event -> {required field: expected type(s)}.  ``v``/``seq``/``ts``
#: are required on every event and checked separately.
EVENT_TYPES: Dict[str, Dict[str, Union[type, Tuple[type, ...]]]] = {
    "run_started": {
        "selection": list,
        "jobs": int,
        "mode": str,
        "scale": dict,
    },
    "warm_task": {"kind": str, "args": list, "ok": bool},
    "experiment_started": {"experiment": str, "mode": str},
    "experiment_finished": {
        "experiment": str,
        "mode": str,
        "duration_s": _NUMBER,
    },
    "experiment_failed": {"experiment": str, "error": str, "traceback": str},
    "experiment_retry": {
        "experiment": str,
        "attempt": int,
        "classification": str,
        "delay_s": _NUMBER,
    },
    "experiment_skipped": {"experiment": str, "source": str},
    "pool_recycled": {"reason": str},
    "run_resumed": {"journal": str, "skipped": list},
    "run_aborted": {"reason": str, "finished": list},
    "server_started": {"port": int, "workers": int},
    "server_stopped": {"sessions": int, "duration_s": _NUMBER},
    "server_worker_restarted": {
        "worker": int,
        "reason": str,
        "classification": str,
        "restarts": int,
    },
    "server_degraded": {"reason": str},
    "server_load_report": {
        "clients": int,
        "sessions": int,
        "failed": int,
        "latency_ms": dict,
        "sessions_per_second": _NUMBER,
    },
    "session_opened": {"session": str, "worker": int},
    "session_recovered": {"session": str, "worker": int, "replayed": int},
    "session_shed": {"session": str, "reason": str},
    "session_closed": {"session": str, "branches": int, "windows": int},
    "warning": {"message": str},
    "speculation_summary": {"experiment": str, "rows": list},
    "cache_stats": {
        "hits": int,
        "misses": int,
        "writes": int,
        "errors": int,
    },
    "metrics_snapshot": {
        "counters": dict,
        "timers": dict,
        "histograms": dict,
    },
    "run_finished": {"experiments": list, "duration_s": _NUMBER},
}

#: Events that must survive a SIGKILL immediately after being written:
#: ``--resume`` replays ``run_finished``/``run_aborted`` ledgers, the
#: chaos CI legs diff journals across kills, and a lost
#: ``session_closed``/``experiment_failed`` tail would hide the very
#: outcome the journal exists to record.  These lines are fsync'd;
#: everything else is only flushed (per-event fsync would dominate the
#: cost of small batteries).
TERMINAL_EVENTS = frozenset(
    {
        "run_finished",
        "run_aborted",
        "experiment_failed",
        "session_closed",
        "server_stopped",
    }
)


class JournalValidationError(ValueError):
    """A journal line that does not satisfy the event schema."""


def validate_event(obj: Any) -> List[str]:
    """Schema problems with one decoded journal line ([] when valid)."""
    errors: List[str] = []
    if not isinstance(obj, dict):
        return [f"event must be a JSON object, got {type(obj).__name__}"]
    event = obj.get("event")
    if not isinstance(event, str):
        errors.append("missing or non-string 'event' field")
        return errors
    if event not in EVENT_TYPES:
        errors.append(f"unknown event type {event!r}")
        return errors
    if obj.get("v") != SCHEMA_VERSION:
        errors.append(f"'v' must be {SCHEMA_VERSION}, got {obj.get('v')!r}")
    if not isinstance(obj.get("seq"), int) or isinstance(obj.get("seq"), bool):
        errors.append("'seq' must be an integer")
    if not isinstance(obj.get("ts"), _NUMBER) or isinstance(obj.get("ts"), bool):
        errors.append("'ts' must be a number")
    for field_name, expected in EVENT_TYPES[event].items():
        if field_name not in obj:
            errors.append(f"{event}: missing required field {field_name!r}")
        elif not isinstance(obj[field_name], expected) or isinstance(
            obj[field_name], bool
        ) != (expected is bool):
            errors.append(
                f"{event}: field {field_name!r} has wrong type"
                f" {type(obj[field_name]).__name__}"
            )
    return errors


def validate_lines(lines: Iterable[str]) -> Tuple[int, List[str]]:
    """Validate decoded-or-not journal lines.

    Returns ``(number_of_events, errors)``; errors are prefixed with
    their 1-based line number.  Sequence numbers must start at 0 and
    increase by 1.
    """
    errors: List[str] = []
    count = 0
    expected_seq = 0
    for line_number, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        count += 1
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as decode_error:
            errors.append(f"line {line_number}: not valid JSON ({decode_error})")
            continue
        for problem in validate_event(obj):
            errors.append(f"line {line_number}: {problem}")
        seq = obj.get("seq") if isinstance(obj, dict) else None
        if isinstance(seq, int) and not isinstance(seq, bool):
            if seq != expected_seq:
                errors.append(
                    f"line {line_number}: seq {seq} out of order"
                    f" (expected {expected_seq})"
                )
            expected_seq = seq + 1
    return count, errors


def validate_journal(path: Union[str, Path]) -> Tuple[int, List[str]]:
    """Validate a journal file; ``(events, errors)`` like the above."""
    with open(path, "r", encoding="utf-8") as handle:
        return validate_lines(handle)


def read_journal(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Decode and *validate* a journal; raises on the first bad line."""
    events: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            obj = json.loads(line)
            problems = validate_event(obj)
            if problems:
                raise JournalValidationError(
                    f"{path}: line {line_number}: {'; '.join(problems)}"
                )
            events.append(obj)
    return events


def read_journal_tolerant(
    path: Union[str, Path],
) -> Tuple[List[Dict[str, Any]], List[str]]:
    """Decode as much of a journal as possible; never raises on content.

    A battery killed mid-write (SIGKILL, OOM, power loss) leaves a
    valid JSONL prefix and possibly one truncated final line.  Resume
    mode must read such journals, so this reader keeps every line that
    decodes and validates, and reports the rest as ``(events,
    problems)`` instead of raising.
    """
    events: List[Dict[str, Any]] = []
    problems: List[str] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError:
                problems.append(f"line {line_number}: truncated or invalid JSON")
                continue
            errors = validate_event(obj)
            if errors:
                problems.append(f"line {line_number}: {'; '.join(errors)}")
                continue
            events.append(obj)
    return events, problems


def finished_experiments(events: Iterable[Dict[str, Any]]) -> List[str]:
    """Experiment ids with an ``experiment_finished`` event, in order.

    This is the checkpoint ledger resume mode replays: an experiment
    that *finished* (in any mode, including a prior resumed run) needs
    no re-execution if its checkpointed result is still in the artifact
    cache.
    """
    finished: List[str] = []
    for event in events:
        if event.get("event") in ("experiment_finished", "experiment_skipped"):
            experiment = event.get("experiment")
            if isinstance(experiment, str) and experiment not in finished:
                finished.append(experiment)
    return finished


class RunJournal:
    """Append-only JSONL event writer with schema enforcement.

    Opened against a path (truncating) or any text stream.  ``emit``
    stamps ``v``/``seq``/``ts``, validates the event against
    :data:`EVENT_TYPES` (so the harness can never write a journal its
    own validator rejects) and flushes, keeping the file readable while
    the battery is still running.  Event counts are tallied for the
    report's battery-performance section.
    """

    def __init__(self, target: Union[str, Path, io.TextIOBase]):
        if isinstance(target, (str, Path)):
            self.path: Optional[Path] = Path(target)
            self._stream = open(self.path, "w", encoding="utf-8")
            self._owns_stream = True
        else:
            self.path = None
            self._stream = target
            self._owns_stream = False
        self._seq = 0
        self.event_counts: Dict[str, int] = {}

    @property
    def events_written(self) -> int:
        return self._seq

    def emit(self, event: str, **fields: Any) -> Dict[str, Any]:
        """Write one event line; returns the full record written."""
        record: Dict[str, Any] = {
            "event": event,
            "v": SCHEMA_VERSION,
            "seq": self._seq,
            "ts": time.time(),
        }
        record.update(fields)
        problems = validate_event(record)
        if problems:
            raise JournalValidationError(
                f"refusing to write invalid {event!r} event: {'; '.join(problems)}"
            )
        self._stream.write(json.dumps(record, sort_keys=True) + "\n")
        self._stream.flush()
        if event in TERMINAL_EVENTS:
            self._fsync()
        self._seq += 1
        self.event_counts[event] = self.event_counts.get(event, 0) + 1
        return record

    def _fsync(self) -> None:
        """Force the written prefix to disk (terminal events only).

        In-memory streams (tests pass ``io.StringIO``) have no file
        descriptor; durability is meaningless there, so the error is
        swallowed rather than special-cased at every call site.
        """
        try:
            os.fsync(self._stream.fileno())
        except (AttributeError, OSError, io.UnsupportedOperation):
            pass

    def close(self) -> None:
        if self._owns_stream and not self._stream.closed:
            self._stream.close()

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


class NullJournal:
    """The do-nothing journal used when ``--journal`` is not given.

    Mirrors the :class:`RunJournal` surface so callers never branch on
    journal presence.
    """

    path: Optional[Path] = None
    event_counts: Dict[str, int] = {}
    events_written = 0

    def emit(self, event: str, **fields: Any) -> Dict[str, Any]:
        return {}

    def close(self) -> None:
        return None

    def __enter__(self) -> "NullJournal":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        return None


#: Shared no-op instance; safe because it holds no state.
NULL_JOURNAL = NullJournal()


def coalesce(journal: Optional[Union[RunJournal, NullJournal]]):
    """``journal`` or the shared :data:`NULL_JOURNAL`."""
    return journal if journal is not None else NULL_JOURNAL


def summarize(path: Union[str, Path]) -> str:
    """Human-readable census of a journal file (used by ``repro journal``)."""
    count, errors = validate_journal(path)
    lines = [f"journal: {path}", f"events:  {count}"]
    if errors:
        lines.append(f"INVALID: {len(errors)} schema violations")
        lines.extend(f"  {error}" for error in errors[:20])
        if len(errors) > 20:
            lines.append(f"  ... and {len(errors) - 20} more")
        return "\n".join(lines)
    census: Dict[str, int] = {}
    for event in read_journal(path):
        census[event["event"]] = census.get(event["event"], 0) + 1
    for name in sorted(census):
        lines.append(f"  {name:20s} {census[name]:5d}")
    lines.append("schema:  valid")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:  # pragma: no cover - thin
    """``python -m repro.obs.journal PATH [PATH ...]`` -> validate."""
    import sys

    paths = argv if argv is not None else sys.argv[1:]
    if not paths:
        print("usage: python -m repro.obs.journal JOURNAL [JOURNAL ...]")
        return 2
    status = 0
    for path in paths:
        print(summarize(path))
        __, errors = validate_journal(path)
        if errors:
            status = 1
    return status


if __name__ == "__main__":  # pragma: no cover
    import sys

    sys.exit(main())
