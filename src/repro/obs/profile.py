"""Profiling hooks: ``cProfile`` around experiments, hot-branch census.

Two complementary views of where the time and the mispredictions go:

* :func:`profile_experiment` wires ``cProfile``/``pstats`` around a
  single experiment run (``repro profile <experiment>``), answering
  "which *code* is hot";
* :func:`hot_branches` attaches a :class:`HotBranchObserver` to the
  measurement loop (:func:`repro.engine.measure.measure` already takes
  ``observers=``) and reports the top-N mispredicting branch sites per
  workload, answering "which *branches* are hard" -- the per-site
  instrumentation Lin & Tarsa argue turns a simulator into a research
  instrument.

This module imports the experiment harness, so it is deliberately not
re-exported from ``repro.obs`` (see that package's docstring).
"""

from __future__ import annotations

import cProfile
import io
import pstats
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..engine import measure, workload_run
from ..harness.experiments import FULL, ExperimentResult, Scale, run_experiment
from ..harness.tables import TextTable, pct1
from ..predictors import make_predictor
from .registry import MetricsRegistry, get_registry

#: pstats sort keys the CLI accepts.
SORT_KEYS = ("cumulative", "tottime", "calls", "ncalls", "time")


def profile_experiment(
    experiment_id: str,
    scale: Scale = FULL,
    sort: str = "cumulative",
    limit: int = 25,
) -> Tuple[ExperimentResult, str]:
    """Run one experiment under ``cProfile``.

    Returns the experiment result plus the ``pstats`` report text
    (top ``limit`` entries sorted by ``sort``).
    """
    if sort not in SORT_KEYS:
        raise ValueError(f"sort must be one of {SORT_KEYS}, got {sort!r}")
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        result = run_experiment(experiment_id, scale)
    finally:
        profiler.disable()
    stream = io.StringIO()
    stats = pstats.Stats(profiler, stream=stream)
    stats.strip_dirs().sort_stats(sort).print_stats(limit)
    return result, stream.getvalue()


@dataclass
class HotBranchObserver:
    """Measurement observer counting visits/mispredictions per site.

    Pass an instance in ``measure(..., observers=[observer])``; it sees
    every dynamic branch with prediction-time information only.  When a
    ``registry`` is given the per-site misprediction counts are also
    recorded into the ``hot_branches.<tag>`` histogram, so they ship
    through parallel merges and land in ``metrics_snapshot`` journal
    events like any other metric.
    """

    tag: str = ""
    registry: Optional[MetricsRegistry] = None
    visits: Dict[int, int] = field(default_factory=dict)
    mispredictions: Dict[int, int] = field(default_factory=dict)

    def __call__(
        self,
        pc: int,
        predicted_taken: bool,
        actual_taken: bool,
        flags: Dict[str, bool],
    ) -> None:
        self.visits[pc] = self.visits.get(pc, 0) + 1
        if predicted_taken != actual_taken:
            self.mispredictions[pc] = self.mispredictions.get(pc, 0) + 1
            if self.registry is not None:
                self.registry.record(f"hot_branches.{self.tag}", f"{pc:#x}")

    def top(self, n: int = 10) -> List[Tuple[int, int, int]]:
        """Top ``n`` sites as ``(pc, mispredictions, visits)``.

        Ordered by misprediction count descending, then PC ascending,
        so the ranking is deterministic across runs.
        """
        ranked = sorted(
            self.mispredictions.items(), key=lambda item: (-item[1], item[0])
        )
        return [(pc, misses, self.visits[pc]) for pc, misses in ranked[:n]]


def hot_branches(
    workload: str,
    predictor_name: str = "gshare",
    scale: Scale = FULL,
    top: int = 10,
    record_metrics: bool = True,
) -> Tuple[HotBranchObserver, TextTable]:
    """Top-``top`` mispredicting branch sites for one workload.

    Replays the workload's committed branch trace through a fresh
    predictor with a :class:`HotBranchObserver` attached and renders
    the census as a :class:`TextTable`.
    """
    trace = workload_run(workload, scale.iterations).trace
    predictor = make_predictor(predictor_name)
    observer = HotBranchObserver(
        tag=f"{workload}.{predictor_name}",
        registry=get_registry() if record_metrics else None,
    )
    result = measure(trace, predictor, {}, observers=[observer])
    table = TextTable(
        title=f"Hot branches: {workload} on {predictor_name}"
        f" (top {top} mispredicting sites)",
        headers=["pc", "mispredicts", "visits", "miss rate", "share"],
    )
    total_misses = result.mispredictions or 1
    for pc, misses, visits in observer.top(top):
        table.add_row(
            [
                f"{pc:#010x}",
                f"{misses:,}",
                f"{visits:,}",
                pct1(misses / visits),
                pct1(misses / total_misses),
            ]
        )
    table.add_note(
        f"{result.branches:,} branches, {result.mispredictions:,} mispredictions"
        f" ({pct1(result.misprediction_rate)} overall)"
    )
    return observer, table
