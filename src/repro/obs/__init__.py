"""Observability: metrics registry, structured run journal, profiling.

The paper's whole argument is that *measurement discipline* (the
SENS/SPEC/PVP/PVN quadrant) is what makes confidence estimators
comparable; this package applies the same discipline to the harness
itself:

* :mod:`repro.obs.registry` -- a process-wide registry of named
  counters, timers and histograms with deterministic snapshot / delta /
  merge semantics, so serial runs and parallel workers account their
  work identically;
* :mod:`repro.obs.journal` -- a structured JSONL run journal with a
  documented, validated event schema (``repro run --journal PATH``);
* :mod:`repro.obs.profile` -- ``cProfile`` wiring around a single
  experiment and an observer-based hot-branch histogram (top-N
  mispredicting sites per workload).

``repro.obs.profile`` imports the experiment harness and must be
imported explicitly (``from repro.obs import profile`` would create an
import cycle through :mod:`repro.engine`, which depends on the
registry).
"""

from .journal import (
    EVENT_TYPES,
    SCHEMA_VERSION,
    JournalValidationError,
    NullJournal,
    RunJournal,
    read_journal,
    validate_event,
    validate_journal,
)
from .registry import REGISTRY, MetricsRegistry, MetricsSnapshot, TimerStat

__all__ = [
    "REGISTRY",
    "MetricsRegistry",
    "MetricsSnapshot",
    "TimerStat",
    "EVENT_TYPES",
    "SCHEMA_VERSION",
    "JournalValidationError",
    "NullJournal",
    "RunJournal",
    "read_journal",
    "validate_event",
    "validate_journal",
]
