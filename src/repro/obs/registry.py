"""Unified metrics registry: named counters, timers and histograms.

One process-wide :data:`REGISTRY` replaces ad-hoc globals (the old
``engine.counters.SIMULATION_COUNTERS`` facade has been removed;
``repro.engine.measure.record_simulation`` reports straight into the
registry).  Three metric families cover everything the harness wants
to account:

* **counters** -- monotonically accumulated floats (``sim.branches``);
* **timers** -- accumulated seconds plus an observation count
  (``sim.replay``, ``experiment.tab2``);
* **histograms** -- string-keyed counted buckets (hot branch PCs,
  warm-task kinds).

The snapshot / delta / merge triple mirrors what the artifact cache
does for its hit statistics, and is what makes parallel runs account
identically to serial ones: a worker snapshots the registry before a
task, computes the delta afterwards, ships the (picklable)
:class:`MetricsSnapshot` back, and the parent folds it in with
:meth:`MetricsRegistry.merge`.  All rendering orders keys
lexicographically, so two runs doing the same work produce identical
``metrics_snapshot`` journal events regardless of scheduling.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple


@dataclass
class TimerStat:
    """Accumulated wall time and number of observations for one timer."""

    seconds: float = 0.0
    count: int = 0

    def add(self, seconds: float, count: int = 1) -> None:
        self.seconds += seconds
        self.count += count

    @property
    def mean_seconds(self) -> float:
        return self.seconds / self.count if self.count else 0.0

    def copy(self) -> "TimerStat":
        return TimerStat(seconds=self.seconds, count=self.count)


@dataclass
class MetricsSnapshot:
    """A frozen, picklable view of a registry's contents.

    Snapshots are value objects: workers ship them across process
    boundaries, deltas between two snapshots describe one task's work,
    and :meth:`MetricsRegistry.merge` folds them back into a live
    registry.
    """

    counters: Dict[str, float] = field(default_factory=dict)
    timers: Dict[str, TimerStat] = field(default_factory=dict)
    histograms: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Dict]:
        """JSON-ready rendering with deterministic (sorted) key order."""
        return {
            "counters": {name: self.counters[name] for name in sorted(self.counters)},
            "timers": {
                name: {
                    "seconds": self.timers[name].seconds,
                    "count": self.timers[name].count,
                }
                for name in sorted(self.timers)
            },
            "histograms": {
                name: {
                    key: self.histograms[name][key]
                    for key in sorted(self.histograms[name])
                }
                for name in sorted(self.histograms)
            },
        }


class MetricsRegistry:
    """Mutable store behind the module-level :data:`REGISTRY`."""

    def __init__(self) -> None:
        self._counters: Dict[str, float] = {}
        self._timers: Dict[str, TimerStat] = {}
        self._histograms: Dict[str, Dict[str, float]] = {}

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------

    def count(self, name: str, amount: float = 1.0) -> None:
        """Add ``amount`` to the counter ``name`` (creating it at 0)."""
        self._counters[name] = self._counters.get(name, 0.0) + amount

    def observe_seconds(self, name: str, seconds: float, count: int = 1) -> None:
        """Fold ``seconds`` of wall time into the timer ``name``."""
        self._timers.setdefault(name, TimerStat()).add(seconds, count)

    @contextmanager
    def timed(self, name: str) -> Iterator[None]:
        """Context manager timing its body into timer ``name``."""
        started = time.perf_counter()
        try:
            yield
        finally:
            self.observe_seconds(name, time.perf_counter() - started)

    def record(self, name: str, key: str, amount: float = 1.0) -> None:
        """Add ``amount`` to bucket ``key`` of histogram ``name``."""
        buckets = self._histograms.setdefault(name, {})
        buckets[key] = buckets.get(key, 0.0) + amount

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------

    def counter_value(self, name: str) -> float:
        return self._counters.get(name, 0.0)

    def timer_value(self, name: str) -> TimerStat:
        stat = self._timers.get(name)
        return stat.copy() if stat is not None else TimerStat()

    def histogram_value(self, name: str) -> Dict[str, float]:
        return dict(self._histograms.get(name, {}))

    def top(self, name: str, n: int = 10) -> List[Tuple[str, float]]:
        """The ``n`` largest buckets of histogram ``name``.

        Sorted by count descending, then key ascending, so the order is
        deterministic even across tied buckets.
        """
        buckets = self._histograms.get(name, {})
        ranked = sorted(buckets.items(), key=lambda item: (-item[1], item[0]))
        return ranked[:n]

    # ------------------------------------------------------------------
    # snapshot / delta / merge (the parallel-scheduler contract)
    # ------------------------------------------------------------------

    def snapshot(self) -> MetricsSnapshot:
        return MetricsSnapshot(
            counters=dict(self._counters),
            timers={name: stat.copy() for name, stat in self._timers.items()},
            histograms={
                name: dict(buckets) for name, buckets in self._histograms.items()
            },
        )

    def since(self, earlier: MetricsSnapshot) -> MetricsSnapshot:
        """The delta accumulated after ``earlier`` was taken.

        Zero-valued entries are dropped so a delta only names metrics
        the interval actually touched.
        """
        counters = {}
        for name, value in self._counters.items():
            delta = value - earlier.counters.get(name, 0.0)
            if delta:
                counters[name] = delta
        timers = {}
        for name, stat in self._timers.items():
            base = earlier.timers.get(name, TimerStat())
            delta_stat = TimerStat(
                seconds=stat.seconds - base.seconds, count=stat.count - base.count
            )
            if delta_stat.seconds or delta_stat.count:
                timers[name] = delta_stat
        histograms = {}
        for name, buckets in self._histograms.items():
            base_buckets = earlier.histograms.get(name, {})
            delta_buckets = {}
            for key, value in buckets.items():
                delta = value - base_buckets.get(key, 0.0)
                if delta:
                    delta_buckets[key] = delta
            if delta_buckets:
                histograms[name] = delta_buckets
        return MetricsSnapshot(
            counters=counters, timers=timers, histograms=histograms
        )

    def merge(self, delta: MetricsSnapshot) -> None:
        """Fold a (worker's) snapshot delta into this registry."""
        for name, value in delta.counters.items():
            self.count(name, value)
        for name, stat in delta.timers.items():
            self.observe_seconds(name, stat.seconds, stat.count)
        for name, buckets in delta.histograms.items():
            for key, value in buckets.items():
                self.record(name, key, value)

    # ------------------------------------------------------------------
    # management
    # ------------------------------------------------------------------

    def discard(self, name: str) -> None:
        """Forget one metric (any family) entirely."""
        self._counters.pop(name, None)
        self._timers.pop(name, None)
        self._histograms.pop(name, None)

    def reset(self) -> None:
        """Forget every metric (tests use this for isolation)."""
        self._counters.clear()
        self._timers.clear()
        self._histograms.clear()

    def as_dict(self) -> Dict[str, Dict]:
        return self.snapshot().as_dict()


#: The process-wide registry.  Parallel workers inherit (fork) or
#: recreate (spawn) their own instance; deltas travel back explicitly.
REGISTRY = MetricsRegistry()


def get_registry(registry: Optional[MetricsRegistry] = None) -> MetricsRegistry:
    """``registry`` if given, else the process-wide instance."""
    return registry if registry is not None else REGISTRY
