"""Deterministic, seedable fault injection for the experiment harness.

``REPRO_FAULTS`` spec strings (see :mod:`repro.faults.spec` for the
grammar) arm crash / flaky / hang / slow / corrupt faults at injection
sites inside the parallel workers and the artifact cache; the resilient
supervisor in :mod:`repro.harness.parallel` is what turns those faults
into retries, pool recycles and serial fallbacks instead of lost runs.
See ``docs/robustness.md``.
"""

from .injector import (
    CORRUPTION_BYTES,
    FAULTS_ENV,
    LEGACY_CRASH_ENV,
    STATE_ENV,
    FaultRegistry,
    InjectedCrash,
    InjectedFault,
    active_faults,
    ensure_state_dir,
    faults_configured,
    reset_active_faults,
    specs_from_env,
)
from .spec import (
    DEFAULT_HANG_SECONDS,
    DEFAULT_SLOW_SECONDS,
    KINDS,
    FaultSpec,
    FaultSpecError,
    parse_spec,
    parse_specs,
)

__all__ = [
    "CORRUPTION_BYTES",
    "FAULTS_ENV",
    "LEGACY_CRASH_ENV",
    "STATE_ENV",
    "FaultRegistry",
    "InjectedCrash",
    "InjectedFault",
    "active_faults",
    "ensure_state_dir",
    "faults_configured",
    "reset_active_faults",
    "specs_from_env",
    "DEFAULT_HANG_SECONDS",
    "DEFAULT_SLOW_SECONDS",
    "KINDS",
    "FaultSpec",
    "FaultSpecError",
    "parse_spec",
    "parse_specs",
]
