"""The ``REPRO_FAULTS`` spec grammar.

A fault configuration is a comma-separated list of *specs*; each spec
is a fault kind followed by colon-separated ``key=value`` parameters::

    REPRO_FAULTS = spec ( "," spec )*
    spec         = kind ( ":" key "=" value )*
    kind         = "crash" | "flaky" | "hang" | "slow" | "corrupt"

Examples::

    crash:experiment=tab3                  # every tab3 worker raises
    flaky:experiment=tab3                  # tab3 raises once, then works
    hang:experiment=fig6:times=1           # the first fig6 worker sleeps
    slow:experiment=*:seconds=0.2          # every experiment is delayed
    corrupt:artifact=trace:times=2         # garble two trace cache entries
    crash:experiment=tab*:p=0.5:seed=7     # seeded coin-flip per match
    crash:server=worker:p=0.1:seed=3       # estimator-server workers die
    hang:server=worker:times=1             # one worker stalls (heartbeat)
    crash:server=connection:times=2        # two client connections drop
    corrupt:server=frame:p=0.05            # garble inbound frames

Parameters (all optional):

``experiment=<glob>``
    Which experiment ids the fault applies to (``fnmatch`` pattern,
    default ``*``).  Used by ``crash``/``flaky``/``hang``/``slow``.
``artifact=<glob>``
    Which artifact-cache *kinds* a ``corrupt`` fault garbles after a
    store (default ``*``).
``server=<glob>``
    Route the fault to a *serving* site instead (``repro serve``):
    ``worker`` fires inside estimator-server worker processes (crash
    kills the process, ``hang`` stalls it past the heartbeat deadline),
    ``connection`` fires in the front-end per inbound frame (crash
    drops the connection, ``slow`` delays it), and ``frame`` garbles
    inbound frame payloads (``corrupt``).  Any kind may target a
    server site; a spec with ``server=`` never fires at the
    experiment or cache sites.
``seconds=<float>``
    Sleep duration for ``hang`` (default 3600) and ``slow``
    (default 0.5).
``times=<int>``
    Maximum number of firings (default: 1 for ``flaky``, unlimited for
    everything else).
``after=<int>``
    Skip the first N matching occurrences (default 0).
``p=<float>`` / ``seed=<int>``
    Fire each eligible occurrence with probability ``p`` decided by a
    hash of ``(seed, spec index, occurrence)`` -- deterministic for a
    given seed, no RNG state involved (default: always fire, seed 0).

Occurrences are counted per spec across *all* processes of a run via
the shared state directory (see :mod:`repro.faults.injector`), so
``flaky`` means "the first attempt anywhere fails" even when the retry
lands on a different worker process.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

#: Recognised fault kinds.
KINDS: Tuple[str, ...] = ("crash", "flaky", "hang", "slow", "corrupt")

#: Default sleep seconds per sleeping kind.
DEFAULT_HANG_SECONDS = 3600.0
DEFAULT_SLOW_SECONDS = 0.5


class FaultSpecError(ValueError):
    """A ``REPRO_FAULTS`` string that does not parse."""


@dataclass(frozen=True)
class FaultSpec:
    """One parsed fault: what fires, where, and how often."""

    kind: str
    index: int
    experiment: str = "*"
    artifact: str = "*"
    server: Optional[str] = None
    seconds: float = 0.0
    times: Optional[int] = None
    after: int = 0
    p: Optional[float] = None
    seed: int = 0

    @property
    def site(self) -> str:
        """The injection site this spec attaches to."""
        if self.server is not None:
            return "server"
        return "cache" if self.kind == "corrupt" else "experiment"

    def describe(self) -> str:
        if self.server is not None:
            selector = f"server={self.server}"
        elif self.kind == "corrupt":
            selector = f"artifact={self.artifact}"
        else:
            selector = f"experiment={self.experiment}"
        bounds = "unbounded" if self.times is None else f"times={self.times}"
        return f"{self.kind}[{self.index}]:{selector}:{bounds}"


def _parse_int(key: str, value: str, spec: str) -> int:
    try:
        parsed = int(value)
    except ValueError:
        raise FaultSpecError(
            f"fault spec {spec!r}: {key}={value!r} is not an integer"
        ) from None
    if parsed < 0:
        raise FaultSpecError(f"fault spec {spec!r}: {key} must be >= 0")
    return parsed


def _parse_float(key: str, value: str, spec: str) -> float:
    try:
        parsed = float(value)
    except ValueError:
        raise FaultSpecError(
            f"fault spec {spec!r}: {key}={value!r} is not a number"
        ) from None
    if parsed < 0:
        raise FaultSpecError(f"fault spec {spec!r}: {key} must be >= 0")
    return parsed


def parse_spec(text: str, index: int) -> FaultSpec:
    """Parse one ``kind:key=value:...`` spec (raises :class:`FaultSpecError`)."""
    parts = [part.strip() for part in text.strip().split(":")]
    kind = parts[0]
    if kind not in KINDS:
        raise FaultSpecError(
            f"fault spec {text!r}: unknown kind {kind!r}"
            f" (expected one of {', '.join(KINDS)})"
        )
    params = {}
    for part in parts[1:]:
        if not part:
            continue
        key, sep, value = part.partition("=")
        if not sep:
            raise FaultSpecError(
                f"fault spec {text!r}: parameter {part!r} is not key=value"
            )
        params[key.strip()] = value.strip()

    known = {
        "experiment",
        "artifact",
        "server",
        "seconds",
        "times",
        "after",
        "p",
        "seed",
    }
    unknown = sorted(set(params) - known)
    if unknown:
        raise FaultSpecError(
            f"fault spec {text!r}: unknown parameter(s) {', '.join(unknown)}"
        )

    seconds = DEFAULT_HANG_SECONDS if kind == "hang" else DEFAULT_SLOW_SECONDS
    if "seconds" in params:
        seconds = _parse_float("seconds", params["seconds"], text)
    times: Optional[int] = 1 if kind == "flaky" else None
    if "times" in params:
        times = _parse_int("times", params["times"], text)
    p: Optional[float] = None
    if "p" in params:
        p = _parse_float("p", params["p"], text)
        if p > 1.0:
            raise FaultSpecError(f"fault spec {text!r}: p must be <= 1")
    return FaultSpec(
        kind=kind,
        index=index,
        experiment=params.get("experiment", "*"),
        artifact=params.get("artifact", "*"),
        server=params.get("server"),
        seconds=seconds,
        times=times,
        after=_parse_int("after", params["after"], text) if "after" in params else 0,
        p=p,
        seed=_parse_int("seed", params["seed"], text) if "seed" in params else 0,
    )


def parse_specs(text: str) -> List[FaultSpec]:
    """Parse a full ``REPRO_FAULTS`` value into an ordered spec list."""
    specs: List[FaultSpec] = []
    for chunk in text.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        specs.append(parse_spec(chunk, index=len(specs)))
    return specs
