"""Deterministic fault injection: the chaos layer of the harness.

The injector evaluates the parsed :mod:`~repro.faults.spec` list at two
sites woven into the production code paths:

* the **experiment** site, hit by every supervised experiment attempt
  in a parallel worker (:mod:`repro.harness.parallel`), where
  ``crash``/``flaky`` raise :class:`InjectedCrash`, ``hang`` sleeps
  longer than any sane task timeout and ``slow`` adds bounded latency;
* the **cache** site, hit after every artifact-cache store
  (:mod:`repro.engine.cache`), where ``corrupt`` garbles the freshly
  written entry so the next load exercises the corrupt-artifact path;
* the **server** sites (:mod:`repro.serve`), selected by ``server=``:
  ``worker`` is evaluated per applied batch inside estimator-server
  worker processes (``crash`` kills the process, ``hang`` stalls it
  past the heartbeat deadline), ``connection`` per inbound client
  frame in the front-end (``crash`` drops the connection, ``slow``
  delays it), and ``frame`` garbles inbound frame payloads before
  decoding (``corrupt``), exercising the protocol-error path.

Determinism is the design constraint: firing decisions depend only on
the spec string, the spec's position, and a monotonically claimed
*occurrence number* -- never on wall-clock time or shared RNG state.
Occurrences are claimed atomically across processes through marker
files in the state directory (``REPRO_FAULTS_STATE``; the supervisor
creates one automatically for parallel runs), so "fail once, then
succeed" keeps its meaning when the retry lands on a different worker.

Experiment-level faults fire only inside *supervised* workers: the
serial path is the recovery mechanism of last resort, and injecting a
crash into it would just take the battery down.  ``corrupt`` faults
fire in any process, because the cache self-heals by recomputing.
"""

from __future__ import annotations

import fnmatch
import hashlib
import os
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from ..obs.registry import REGISTRY
from .spec import FaultSpec, parse_specs

FAULTS_ENV = "REPRO_FAULTS"
STATE_ENV = "REPRO_FAULTS_STATE"
#: Legacy hook (PR 2): comma-separated experiment ids whose workers
#: crash.  Subsumed by ``REPRO_FAULTS=crash:experiment=<id>`` but still
#: honoured.
LEGACY_CRASH_ENV = "REPRO_CRASH_EXPERIMENTS"

#: Bytes written over a cache entry by a fired ``corrupt`` fault; not a
#: valid pickle, so the next load takes the corruption path.
CORRUPTION_BYTES = b"\x00repro-injected-corruption\x00"


class InjectedFault(RuntimeError):
    """Base class for raised injected faults.

    Must pickle cleanly (single positional message arg): these
    exceptions cross the worker/parent process boundary, and an
    unpicklable exception would break the pool instead of failing one
    task.  ``kind``/``spec`` are decoration, set post-construction and
    lost in transit.
    """

    kind: Optional[str] = None
    spec: Optional[FaultSpec] = None


class InjectedCrash(InjectedFault):
    """Raised by a fired ``crash`` or ``flaky`` fault."""


class FaultRegistry:
    """Evaluates fault specs against injection sites.

    ``state_dir`` shares occurrence counters between processes; without
    one (pure in-process use) counting is process-local.
    """

    def __init__(
        self,
        specs: Sequence[FaultSpec],
        state_dir: Optional[str] = None,
        sleep=time.sleep,
    ):
        self.specs: List[FaultSpec] = list(specs)
        self.state_dir = state_dir
        self._sleep = sleep
        self._local_counts: Dict[int, int] = {}
        self._claim_hints: Dict[int, int] = {}

    def __bool__(self) -> bool:
        return bool(self.specs)

    # ------------------------------------------------------------------
    # occurrence accounting
    # ------------------------------------------------------------------

    def _claim_occurrence(self, spec: FaultSpec) -> int:
        """Atomically claim the next occurrence number for ``spec``."""
        if self.state_dir is None:
            count = self._local_counts.get(spec.index, 0)
            self._local_counts[spec.index] = count + 1
            return count
        os.makedirs(self.state_dir, exist_ok=True)
        n = self._claim_hints.get(spec.index, 0)
        while True:
            marker = os.path.join(self.state_dir, f"spec{spec.index}.occ{n}")
            try:
                fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                n += 1
                continue
            os.close(fd)
            self._claim_hints[spec.index] = n + 1
            return n

    @staticmethod
    def _coin(spec: FaultSpec, occurrence: int) -> bool:
        """Seeded, occurrence-indexed deterministic Bernoulli draw."""
        if spec.p is None:
            return True
        payload = f"{spec.seed}:{spec.index}:{occurrence}".encode("utf-8")
        digest = hashlib.sha256(payload).digest()
        return int.from_bytes(digest[:8], "big") / 2**64 < spec.p

    def _fires(self, spec: FaultSpec) -> bool:
        """Claim an occurrence for a matching spec; does it fire?"""
        occurrence = self._claim_occurrence(spec)
        if occurrence < spec.after:
            return False
        if spec.times is not None and occurrence >= spec.after + spec.times:
            return False
        return self._coin(spec, occurrence)

    def _record(self, spec: FaultSpec, target: str) -> None:
        REGISTRY.count("faults.injected")
        REGISTRY.record("faults.fired", spec.kind)
        REGISTRY.record("faults.targets", f"{spec.kind}:{target}")

    # ------------------------------------------------------------------
    # injection sites
    # ------------------------------------------------------------------

    def on_experiment(self, experiment_id: str) -> None:
        """The experiment site: raise or sleep per matching spec."""
        for spec in self.specs:
            if spec.site != "experiment":
                continue
            if not fnmatch.fnmatchcase(experiment_id, spec.experiment):
                continue
            if not self._fires(spec):
                continue
            self._record(spec, experiment_id)
            if spec.kind in ("crash", "flaky"):
                error = InjectedCrash(
                    f"injected {spec.kind} fault for experiment"
                    f" {experiment_id!r} ({spec.describe()})"
                )
                error.kind = spec.kind
                error.spec = spec
                raise error
            # hang / slow
            self._sleep(spec.seconds)

    def on_server(self, site_name: str) -> None:
        """A server site (``worker``/``connection``): raise or sleep.

        Mirrors :meth:`on_experiment` for ``server=`` specs.  Callers
        decide what an :class:`InjectedCrash` means at their site (the
        worker loop turns it into process death, the front-end into a
        dropped connection); ``corrupt`` server specs never fire here
        -- they go through :meth:`corrupt_server_frame`.
        """
        for spec in self.specs:
            if spec.site != "server" or spec.kind == "corrupt":
                continue
            if not fnmatch.fnmatchcase(site_name, spec.server):
                continue
            if not self._fires(spec):
                continue
            self._record(spec, site_name)
            if spec.kind in ("crash", "flaky"):
                error = InjectedCrash(
                    f"injected {spec.kind} fault at server site"
                    f" {site_name!r} ({spec.describe()})"
                )
                error.kind = spec.kind
                error.spec = spec
                raise error
            # hang / slow
            self._sleep(spec.seconds)

    def corrupt_server_frame(self, site_name: str, payload: bytes) -> bytes:
        """The frame site: garble an inbound payload if a spec fires."""
        for spec in self.specs:
            if spec.site != "server" or spec.kind != "corrupt":
                continue
            if not fnmatch.fnmatchcase(site_name, spec.server):
                continue
            if not self._fires(spec):
                continue
            self._record(spec, site_name)
            payload = CORRUPTION_BYTES
        return payload

    def on_cache_store(self, artifact_kind: str, path: os.PathLike) -> bool:
        """The cache site: garble the stored entry if a corrupt spec fires."""
        corrupted = False
        for spec in self.specs:
            if spec.site != "cache":
                continue
            if not fnmatch.fnmatchcase(artifact_kind, spec.artifact):
                continue
            if not self._fires(spec):
                continue
            self._record(spec, artifact_kind)
            try:
                with open(path, "wb") as handle:
                    handle.write(CORRUPTION_BYTES)
                corrupted = True
            except OSError:
                pass
        return corrupted


# ----------------------------------------------------------------------
# process-wide active registry
# ----------------------------------------------------------------------

_ACTIVE: Optional[FaultRegistry] = None


def specs_from_env() -> List[FaultSpec]:
    """Parse ``REPRO_FAULTS`` plus the legacy crash hook."""
    specs = parse_specs(os.environ.get(FAULTS_ENV, ""))
    legacy = os.environ.get(LEGACY_CRASH_ENV, "")
    for experiment_id in (part.strip() for part in legacy.split(",")):
        if experiment_id:
            specs.append(
                FaultSpec(kind="crash", index=len(specs), experiment=experiment_id)
            )
    return specs


def active_faults() -> FaultRegistry:
    """The process-wide registry (created lazily from the environment)."""
    global _ACTIVE
    if _ACTIVE is None:
        _ACTIVE = FaultRegistry(
            specs_from_env(), state_dir=os.environ.get(STATE_ENV) or None
        )
    return _ACTIVE


def reset_active_faults() -> None:
    """Forget the active registry; the next use re-reads the environment."""
    global _ACTIVE
    _ACTIVE = None


def faults_configured() -> bool:
    """Is any fault spec present in the environment?"""
    return bool(
        os.environ.get(FAULTS_ENV, "").strip()
        or os.environ.get(LEGACY_CRASH_ENV, "").strip()
    )


def ensure_state_dir() -> Optional[str]:
    """Guarantee a shared occurrence-state directory for worker processes.

    Called by the supervisor before spinning up a pool: when faults are
    configured but ``REPRO_FAULTS_STATE`` is not set, a fresh temp
    directory is created and exported so every worker (fork or spawn)
    counts occurrences against the same ledger.  Returns the state dir
    in use, or ``None`` when no faults are configured.
    """
    if not faults_configured():
        return None
    state = os.environ.get(STATE_ENV)
    if not state:
        state = tempfile.mkdtemp(prefix="repro-faults-")
        os.environ[STATE_ENV] = state
        reset_active_faults()
    else:
        Path(state).mkdir(parents=True, exist_ok=True)
    return state


def release_state_dir(state: str) -> None:
    """Tear down a supervisor-*owned* occurrence-state directory.

    The inverse of :func:`ensure_state_dir`'s auto-creation branch.
    Without this, the exported ``REPRO_FAULTS_STATE`` tempdir -- and
    every ``spec<i>.occ<n>`` claim marker in it -- outlived the battery
    that created it, so a second supervised battery in the same process
    inherited stale occurrence numbers: a ``times=1`` fault that had
    already fired (plus its retry claim) would never fire again, and
    ``after=N`` windows shifted arbitrarily.  Callers that *inherited*
    an externally-set state dir (CI chaos legs sharing a ledger across
    a kill/resume pair) must not call this; the supervisor only
    releases directories it created.

    Best-effort: only this module's claim markers are removed, the
    directory is deleted only if that leaves it empty, and the
    environment export is dropped only if it still points here.  The
    active registry is reset either way so the next use re-reads the
    environment.
    """
    root = Path(state)
    try:
        for marker in root.glob("spec*.occ*"):
            try:
                marker.unlink()
            except OSError:
                pass
        try:
            root.rmdir()
        except OSError:
            pass
    finally:
        if os.environ.get(STATE_ENV) == state:
            os.environ.pop(STATE_ENV, None)
        reset_active_faults()
